package ring

import (
	"errors"
	"fmt"
)

// Engine executes an algorithm (a slice of per-processor Nodes, index 0 being
// the leader) on a ring and returns the verdict plus exact bit accounting.
type Engine interface {
	// Name identifies the engine in reports.
	Name() string
	// Run executes the nodes under the given configuration. nodes[0] is the
	// leader; nodes[i] is connected forward to nodes[(i+1)%n].
	Run(cfg Config, nodes []Node) (*Result, error)
}

// ErrAlreadyDecided is returned if the leader decides twice.
var ErrAlreadyDecided = errors.New("ring: verdict already decided")

// neighbour returns the processor index reached from `from` by travelling in
// direction d on a ring of n processors.
func neighbour(from int, d Direction, n int) int {
	if d == Forward {
		return (from + 1) % n
	}
	return (from - 1 + n) % n
}

// arrivalDirection is the direction the receiver perceives a message sent in
// direction d: a Forward-travelling message arrives from the receiver's
// Backward side, and vice versa.
func arrivalDirection(d Direction) Direction {
	return d.Opposite()
}

// validateSend checks a send against the topology mode.
func validateSend(cfg Config, s Send) error {
	switch s.Dir {
	case Forward:
		return nil
	case Backward:
		if cfg.Mode == Unidirectional {
			return ErrBackwardInUnidirectional
		}
		return nil
	default:
		return fmt.Errorf("ring: invalid send direction %d", s.Dir)
	}
}

// routeSend validates one send against the topology and resolves where it
// goes: the receiving processor and the arrival direction as the receiver
// perceives it. It is the only caller of validateSend, so every engine —
// scheduler-backed or concurrent — enforces identical legality rules.
func routeSend(cfg Config, fromProc int, s Send, n int) (to int, arrival Direction, err error) {
	if err := validateSend(cfg, s); err != nil {
		return 0, 0, fmt.Errorf("processor %d: %w", fromProc, err)
	}
	return neighbour(fromProc, s.Dir, n), arrivalDirection(s.Dir), nil
}
