package ring

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
)

// ErrUnknownSchedule is returned when a schedule name is not one of
// ScheduleNames (or their aliases). It wraps the detailed lookup errors of
// NewSchedulerByName and NewEngineByName, so callers classify failures with
// errors.Is instead of string matching.
var ErrUnknownSchedule = errors.New("ring: unknown schedule")

// Scheduler chooses the order in which pending messages are delivered by the
// shared event loop (runLoop). The paper's bounds hold under every legal
// asynchronous schedule, so the schedule is an experiment axis, not an engine
// property: one loop, many schedulers.
//
// Implementations must preserve FIFO order within each directed link — links
// are channels and never reorder — but may interleave different links
// arbitrarily; every such interleaving is a legal execution of the
// asynchronous model.
type Scheduler interface {
	// Name identifies the schedule in reports and flag values.
	Name() string
	// Reset prepares the scheduler for a fresh run over `links` directed
	// links (see linkIndex), discarding any state from a previous run.
	Reset(links int)
	// Push appends d to the FIFO queue of the given link.
	Push(link int, d Delivery)
	// Next removes and returns the next delivery to perform; ok is false
	// when no message is pending.
	Next() (d Delivery, ok bool)
}

// fifoScheduler delivers messages in global first-in-first-out order — the
// schedule the seed SequentialEngine hardcoded. One shared queue suffices:
// global FIFO trivially preserves per-link FIFO. The queue is the
// struct-of-arrays fifoQueue, so the default engine's in-flight messages
// live in one flat arena.
type fifoScheduler struct {
	q fifoQueue
}

// NewFIFOScheduler returns the deterministic global-FIFO schedule.
func NewFIFOScheduler() Scheduler { return &fifoScheduler{} }

func (s *fifoScheduler) Name() string              { return "fifo" }
func (s *fifoScheduler) Reset(links int)           { s.q.reset() }
func (s *fifoScheduler) Push(link int, d Delivery) { s.q.push(d.To, d.From, d.Payload) }

func (s *fifoScheduler) Next() (Delivery, bool) {
	if s.q.len() == 0 {
		return Delivery{}, false
	}
	return s.q.pop(), true
}

// randomScheduler delivers the head of a uniformly random non-empty link,
// driven by a seeded generator so runs are reproducible.
type randomScheduler struct {
	seed     int64
	rng      *rand.Rand
	links    linkQueues
	nonEmpty []int
}

// NewRandomScheduler returns a seeded random-order schedule.
func NewRandomScheduler(seed int64) Scheduler { return &randomScheduler{seed: seed} }

//ring:coldpath -- label rendering; called at setup and in error reports, never per message
func (s *randomScheduler) Name() string { return fmt.Sprintf("random(seed=%d)", s.seed) }

func (s *randomScheduler) Reset(links int) {
	s.rng = rand.New(rand.NewSource(s.seed))
	s.links.reset(links)
	s.nonEmpty = s.nonEmpty[:0]
}

// Push enqueues d and tracks the link on the non-empty list.
//
//ring:hotpath guard=TestLoopAllocatesLessThanSeedLoop
func (s *randomScheduler) Push(link int, d Delivery) {
	if s.links.push(link, d) {
		//ring:prealloc -- nonEmpty keeps its capacity across Reset; growth is first-run only
		s.nonEmpty = append(s.nonEmpty, link)
	}
}

// Next delivers the head of a uniformly random non-empty link. The generator
// is seeded per run, so the schedule is reproducible.
//
//ring:deterministic
//ring:hotpath guard=TestLoopAllocatesLessThanSeedLoop
func (s *randomScheduler) Next() (Delivery, bool) {
	if len(s.nonEmpty) == 0 {
		return Delivery{}, false
	}
	i := s.rng.Intn(len(s.nonEmpty))
	link := s.nonEmpty[i]
	d := s.links.pop(link)
	if s.links.empty(link) {
		s.nonEmpty[i] = s.nonEmpty[len(s.nonEmpty)-1]
		s.nonEmpty = s.nonEmpty[:len(s.nonEmpty)-1]
	}
	return d, true
}

// roundRobinScheduler cycles over the directed links in a fixed rotation,
// delivering at most one message per link per turn. It approximates the
// synchronous round structure distributed algorithms are often (incorrectly)
// reasoned about in, while remaining a legal asynchronous schedule.
type roundRobinScheduler struct {
	links  linkQueues
	cursor int
}

// NewRoundRobinScheduler returns the round-robin-by-link schedule.
func NewRoundRobinScheduler() Scheduler { return &roundRobinScheduler{} }

func (s *roundRobinScheduler) Name() string { return "round-robin" }

func (s *roundRobinScheduler) Reset(links int) {
	s.links.reset(links)
	s.cursor = 0
}

func (s *roundRobinScheduler) Push(link int, d Delivery) { s.links.push(link, d) }

func (s *roundRobinScheduler) Next() (Delivery, bool) {
	if s.links.pending == 0 {
		return Delivery{}, false
	}
	n := len(s.links.head)
	for i := 0; i < n; i++ {
		link := s.cursor + i
		if link >= n {
			link -= n
		}
		if !s.links.empty(link) {
			s.cursor = link + 1
			if s.cursor == n {
				s.cursor = 0
			}
			return s.links.pop(link), true
		}
	}
	// Unreachable: pending > 0 implies some link is non-empty.
	return Delivery{}, false
}

// DefaultAdversarialBound is the fairness bound used when an adversarial
// schedule is selected by name.
const DefaultAdversarialBound = 8

// adversarialScheduler is a bounded-delay adversary. It prefers the link that
// became non-empty most recently (newest-first — the exact opposite of FIFO),
// which maximally delays old messages and flushes out algorithms that
// silently assume global FIFO delivery. Every bound-th delivery it instead
// serves the longest-waiting link, so no message is delayed forever and the
// schedule stays legal under the paper's finite-delay asynchronous model.
//
// Bookkeeping: every non-empty link keeps at least one live hint on the
// newest-first stack and one in the oldest-first queue. Hints for links that
// were drained through the other structure go stale and are skipped on pop;
// a stale hint can at worst cause a link to be offered again, never reorder
// a link's own FIFO queue.
type adversarialScheduler struct {
	bound    int
	links    linkQueues
	newest   []int // stack of hints, newest activation last
	oldest   []int // queue of hints, oldest activation first
	oldestAt int   // head index into oldest
	count    int
}

// NewAdversarialScheduler returns a bounded-delay adversarial schedule.
// Bounds below 1 fall back to DefaultAdversarialBound.
func NewAdversarialScheduler(bound int) Scheduler {
	if bound < 1 {
		bound = DefaultAdversarialBound
	}
	return &adversarialScheduler{bound: bound}
}

//ring:coldpath -- label rendering; called at setup and in error reports, never per message
func (s *adversarialScheduler) Name() string {
	return fmt.Sprintf("adversarial(bound=%d)", s.bound)
}

func (s *adversarialScheduler) Reset(links int) {
	s.links.reset(links)
	s.newest = s.newest[:0]
	s.oldest = s.oldest[:0]
	s.oldestAt = 0
	s.count = 0
}

func (s *adversarialScheduler) Push(link int, d Delivery) {
	if s.links.push(link, d) {
		s.newest = append(s.newest, link) //ring:prealloc -- capacity survives Reset; growth is first-run only
		s.oldest = append(s.oldest, link) //ring:prealloc -- capacity survives Reset; growth is first-run only
	}
}

// Next serves the newest-activated link, except every bound-th delivery,
// which serves the oldest — a deterministic schedule despite its hostility.
//
//ring:deterministic
func (s *adversarialScheduler) Next() (Delivery, bool) {
	if s.links.pending == 0 {
		return Delivery{}, false
	}
	s.count++
	var link int
	if s.count%s.bound == 0 {
		link = s.popOldest()
		d := s.links.pop(link)
		if !s.links.empty(link) {
			s.oldest = append(s.oldest, link) //ring:prealloc -- re-pushes a hint just popped; capacity survives Reset, growth is first-run only
		}
		return d, true
	}
	link = s.popNewest()
	d := s.links.pop(link)
	if !s.links.empty(link) {
		s.newest = append(s.newest, link) //ring:prealloc -- re-pushes a hint just popped; capacity survives Reset, growth is first-run only
	}
	return d, true
}

// popNewest pops hints off the stack until one names a non-empty link.
func (s *adversarialScheduler) popNewest() int {
	for {
		link := s.newest[len(s.newest)-1]
		s.newest = s.newest[:len(s.newest)-1]
		if !s.links.empty(link) {
			return link
		}
	}
}

// popOldest advances the queue head past stale hints to a non-empty link.
func (s *adversarialScheduler) popOldest() int {
	for {
		link := s.oldest[s.oldestAt]
		s.oldestAt++
		if s.oldestAt > len(s.oldest)/2 {
			s.oldest = append(s.oldest[:0], s.oldest[s.oldestAt:]...)
			s.oldestAt = 0
		}
		if !s.links.empty(link) {
			return link
		}
	}
}

// ScheduleNames lists the schedule names accepted by NewSchedulerByName and
// NewEngineByName (and hence by every -engine/-schedule flag and the facade's
// Options.Schedule). "concurrent" and "sharded" are special: they name the
// goroutine-per-processor and segment-sharded engines rather than
// scheduler-backed ones. The tail of the list is the fault axis — schedules
// that vary delivery fate, not just delivery order (see fault.go); use
// ScheduleDeliveryGuarantee to classify what each one still promises.
func ScheduleNames() []string {
	return []string{
		"sequential", "random", "round-robin", "adversarial", "concurrent", "sharded",
		"lossy", "duplicating", "crash-restart", "crash-repair",
	}
}

// CanonicalScheduleName folds the accepted aliases — "fifo" for
// "sequential", "random-order" for "random", "bounded-delay" for
// "adversarial", "drop" for "lossy", "at-least-once" for "duplicating",
// "crash" for "crash-repair" and "self-stabilizing" for "crash-restart" —
// onto the canonical names of ScheduleNames. Unknown names (and the empty
// string) pass through unchanged; lookup functions remain the validators.
// Anything that keys state by schedule name (the serving tier's memo cache,
// a client pool) should key by the canonical name so aliases converge on one
// entry.
func CanonicalScheduleName(name string) string {
	switch name {
	case "fifo":
		return "sequential"
	case "random-order":
		return "random"
	case "bounded-delay":
		return "adversarial"
	case "drop":
		return "lossy"
	case "at-least-once":
		return "duplicating"
	case "crash":
		return "crash-repair"
	case "self-stabilizing":
		return "crash-restart"
	default:
		return name
	}
}

// ScheduleUsesSeed reports whether the named schedule's execution depends on
// the seed. Randomized delivery order does, and so does every fault
// schedule: their drop/duplicate/crash fates are seeded draws. Results under
// the remaining schedules are seed-independent, which is what lets the
// serving tier memoize them under one seed. A new seeded schedule must be
// added here as well as to the factory table below.
func ScheduleUsesSeed(name string) bool {
	switch CanonicalScheduleName(name) {
	case "random", "lossy", "duplicating", "crash-restart", "crash-repair":
		return true
	}
	return false
}

// ScheduleDeliveryGuarantee classifies the delivery guarantee of a schedule
// name (canonical names and aliases of ScheduleNames): what the network
// still promises once the schedule has had its way. Everything predating the
// fault axis — and the lossy and crash-restart schedules, whose faults are
// absorbed by the link layer — upholds the paper's exactly-once model;
// consumers that require bit-identical results across schedules should
// filter on ExactlyOnce rather than enumerate names. Unknown names classify
// as ExactlyOnce; the lookup functions remain the validators.
func ScheduleDeliveryGuarantee(name string) DeliveryGuarantee {
	switch CanonicalScheduleName(name) {
	case "duplicating":
		return AtLeastOnce
	case "crash-repair":
		return CrashProne
	}
	return ExactlyOnce
}

// schedulerFactoryByName is the single name → scheduler table behind both
// NewSchedulerByName and NewEngineByName; a new schedule needs exactly one
// case here plus its ScheduleNames entry (and, if seeded, a
// ScheduleUsesSeed case). The seed drives randomized schedules and is
// ignored by deterministic ones. Aliases are folded by
// CanonicalScheduleName, the only place they are spelled.
func schedulerFactoryByName(name string, seed int64) (func() Scheduler, error) {
	switch CanonicalScheduleName(name) {
	case "sequential":
		return NewFIFOScheduler, nil
	case "random":
		return func() Scheduler { return NewRandomScheduler(seed) }, nil
	case "round-robin":
		return NewRoundRobinScheduler, nil
	case "adversarial":
		return func() Scheduler { return NewAdversarialScheduler(DefaultAdversarialBound) }, nil
	case "lossy":
		return func() Scheduler { return NewLossyScheduler(seed, DefaultDropRate, DefaultMaxRetransmits) }, nil
	case "duplicating":
		return func() Scheduler { return NewDuplicatingScheduler(seed, DefaultDuplicateRate) }, nil
	case "crash-restart":
		return func() Scheduler { return NewCrashRestartScheduler(seed) }, nil
	case "crash-repair":
		return func() Scheduler { return NewCrashRepairScheduler(seed) }, nil
	default:
		return nil, fmt.Errorf("%w %q (known: %s)",
			ErrUnknownSchedule, name, strings.Join(ScheduleNames(), ", "))
	}
}

// NewSchedulerByName builds a built-in scheduler by name.
func NewSchedulerByName(name string, seed int64) (Scheduler, error) {
	factory, err := schedulerFactoryByName(name, seed)
	if err != nil {
		return nil, err
	}
	return factory(), nil
}

// NewEngineByName resolves a schedule name (see ScheduleNames) to a
// ready-to-run engine. This is the single lookup behind the cmd tools'
// -engine/-schedule flags and the facade's Options.Schedule. The names with
// dedicated engine types are special-cased; everything else is resolved
// through the shared scheduler table.
//
//ring:coldpath -- engine construction, once per run or batch worker
func NewEngineByName(name string, seed int64) (Engine, error) {
	switch CanonicalScheduleName(name) {
	case "sequential":
		return NewSequentialEngine(), nil
	case "random":
		return NewRandomOrderEngine(seed), nil
	case "concurrent":
		return NewConcurrentEngine(), nil
	case "sharded":
		return NewShardedEngine(), nil
	}
	factory, err := schedulerFactoryByName(name, seed)
	if err != nil {
		return nil, err
	}
	return NewScheduledEngine(factory().Name(), factory), nil
}
