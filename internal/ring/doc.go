// Package ring implements the distributed ring-with-a-leader model of
// Mansour & Zaks: n processors arranged in a ring, processor 1 being the
// leader, communicating only over the ring edges with message-driven
// algorithms. The package is input-agnostic — algorithms construct their own
// per-processor Node values (closing over whatever input each processor
// holds) and hand them to an Engine.
//
// The paper's bounds hold under every legal asynchronous schedule, so the
// schedule is a pluggable axis rather than an engine property. A single
// event loop (runLoop) owns contexts, dispatch validation, bit accounting,
// trace recording, the start phase and termination; a Scheduler decides only
// the delivery order, constrained to per-link FIFO. The engines are:
//
//   - Sequential: the loop under a global-FIFO scheduler. For unidirectional
//     leader-initiated algorithms this reproduces exactly the unique
//     execution the paper describes and makes bit counts reproducible.
//   - RandomOrder: the loop under a seeded random scheduler — delivers the
//     head of a uniformly random non-empty link; used to check
//     schedule-independence across many seeds.
//   - RoundRobin: the loop cycling over links in a fixed rotation,
//     approximating synchronous rounds.
//   - Adversarial: the loop under a bounded-delay adversary that prefers the
//     newest non-empty link (maximally anti-FIFO) with a fairness bound so
//     every message still experiences only a finite delay.
//   - Concurrent: one goroutine per processor connected by unbounded links,
//     i.e. a genuinely asynchronous execution; used to demonstrate that the
//     algorithms are correct under real concurrency and to cross-check the
//     scheduler-backed engines.
//
// New schedules need only implement Scheduler and wrap it with
// NewScheduledEngine; NewEngineByName resolves the built-in names (see
// ScheduleNames) for flags and facade options.
//
// Runs are driven through Engine.Run (or RunWith on a caller-owned RunState:
// stats, contexts and scheduler queues reused run to run — the batch pool's
// steady-state path) under a Config carrying the message budget, trace
// recording and a cancellation context; a canceled run fails with an error
// wrapping both ErrCanceled and the context's own error.
//
// The engine, not the algorithm, accounts every payload bit sent over every
// link; Stats is the quantity all the paper's results are about.
package ring
