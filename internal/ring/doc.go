// Package ring implements the distributed ring-with-a-leader model of
// Mansour & Zaks: n processors arranged in a ring, processor 1 being the
// leader, communicating only over the ring edges with message-driven
// algorithms. The package is input-agnostic — algorithms construct their own
// per-processor Node values (closing over whatever input each processor
// holds) and hand them to an Engine.
//
// Two engines implement the same semantics:
//
//   - Sequential: a deterministic event-driven simulator delivering messages
//     in FIFO order. For unidirectional algorithms this reproduces exactly
//     the unique execution the paper describes (a round-robin sequence of
//     messages starting at the leader), and it makes bit counts reproducible.
//   - Concurrent: one goroutine per processor connected by unbounded links,
//     i.e. a genuinely asynchronous execution. Used to demonstrate that the
//     algorithms are correct under arbitrary asynchrony and to cross-check
//     the sequential engine.
//
// The engine, not the algorithm, accounts every payload bit sent over every
// link; Stats is the quantity all the paper's results are about.
package ring
