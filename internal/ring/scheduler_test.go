package ring

import (
	"errors"
	"strings"
	"testing"
)

// mark builds a Delivery whose To field tags it, so scheduler unit tests can
// track ordering without inspecting payloads.
func mark(tag int) Delivery { return Delivery{To: tag} }

func TestDequePushPopWrapAndGrow(t *testing.T) {
	var d deque
	if d.len() != 0 {
		t.Fatal("new deque should be empty")
	}
	// Interleave pushes and pops so head wraps around the buffer, then grow
	// past the initial capacity.
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			d.push(mark(round*100 + i))
		}
		for i := 0; i < 100; i++ {
			if got := d.pop(); got.To != round*100+i {
				t.Fatalf("round %d: pop = %d, want %d", round, got.To, round*100+i)
			}
		}
	}
	d.push(mark(7))
	d.clear()
	if d.len() != 0 {
		t.Error("clear should empty the deque")
	}
}

func TestSchedulersPreservePerLinkFIFO(t *testing.T) {
	scheds := []Scheduler{
		NewFIFOScheduler(),
		NewRandomScheduler(42),
		NewRoundRobinScheduler(),
		NewAdversarialScheduler(3),
	}
	for _, s := range scheds {
		s.Reset(8)
		// Three messages on link 2 interleaved with traffic on links 0 and 5.
		s.Push(2, mark(20))
		s.Push(0, mark(0))
		s.Push(2, mark(21))
		s.Push(5, mark(50))
		s.Push(2, mark(22))
		var link2 []int
		for {
			d, ok := s.Next()
			if !ok {
				break
			}
			if d.To >= 20 && d.To < 30 {
				link2 = append(link2, d.To)
			}
		}
		if len(link2) != 3 || link2[0] != 20 || link2[1] != 21 || link2[2] != 22 {
			t.Errorf("%s: link 2 deliveries out of FIFO order: %v", s.Name(), link2)
		}
		if _, ok := s.Next(); ok {
			t.Errorf("%s: Next on a drained scheduler should report no delivery", s.Name())
		}
	}
}

func TestSchedulerResetDiscardsState(t *testing.T) {
	scheds := []Scheduler{
		NewFIFOScheduler(),
		NewRandomScheduler(1),
		NewRoundRobinScheduler(),
		NewAdversarialScheduler(2),
	}
	for _, s := range scheds {
		s.Reset(4)
		s.Push(1, mark(1))
		s.Push(3, mark(3))
		s.Reset(4)
		if d, ok := s.Next(); ok {
			t.Errorf("%s: Reset leaked a pending delivery: %+v", s.Name(), d)
		}
	}
}

func TestRoundRobinCyclesLinks(t *testing.T) {
	s := NewRoundRobinScheduler()
	s.Reset(6)
	// Two messages each on links 1 and 4; round-robin must alternate links
	// rather than drain one first.
	s.Push(1, mark(10))
	s.Push(1, mark(11))
	s.Push(4, mark(40))
	s.Push(4, mark(41))
	var order []int
	for {
		d, ok := s.Next()
		if !ok {
			break
		}
		order = append(order, d.To)
	}
	want := []int{10, 40, 11, 41}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("round-robin order = %v, want %v", order, want)
		}
	}
}

func TestAdversarialPrefersNewestLink(t *testing.T) {
	s := NewAdversarialScheduler(100) // fairness bound far away
	s.Reset(6)
	s.Push(0, mark(0))
	s.Push(1, mark(1))
	s.Push(2, mark(2))
	// Newest-first: link 2, then 1, then 0.
	for _, want := range []int{2, 1, 0} {
		d, ok := s.Next()
		if !ok || d.To != want {
			t.Fatalf("adversarial delivery = %+v (ok=%v), want link %d", d, ok, want)
		}
	}
}

func TestAdversarialFairnessBoundServesOldestLink(t *testing.T) {
	s := NewAdversarialScheduler(2) // every 2nd delivery serves the oldest link
	s.Reset(4)
	s.Push(0, mark(0)) // oldest
	s.Push(1, mark(10))
	s.Push(1, mark(11))
	s.Push(1, mark(12))
	// Delivery 1: newest link (1). Delivery 2: fairness, oldest link (0).
	first, _ := s.Next()
	second, _ := s.Next()
	if first.To != 10 || second.To != 0 {
		t.Errorf("deliveries = %d, %d; want 10 then 0 (fairness on 2nd)", first.To, second.To)
	}
}

func TestNewEngineByNameAndAliases(t *testing.T) {
	for _, name := range ScheduleNames() {
		eng, err := NewEngineByName(name, 3)
		if err != nil {
			t.Fatalf("NewEngineByName(%q): %v", name, err)
		}
		if eng.Name() == "" {
			t.Errorf("engine for %q has empty name", name)
		}
	}
	for alias, canonical := range map[string]string{
		"fifo":          "sequential",
		"random-order":  "random",
		"bounded-delay": "adversarial",
	} {
		if _, err := NewEngineByName(alias, 0); err != nil {
			t.Errorf("alias %q (for %s) rejected: %v", alias, canonical, err)
		}
	}
	_, err := NewEngineByName("bogus", 0)
	if err == nil || !strings.Contains(err.Error(), "unknown schedule") {
		t.Errorf("expected unknown-schedule error, got %v", err)
	}
	if _, err := NewSchedulerByName("bogus", 0); err == nil {
		t.Error("NewSchedulerByName should reject unknown names")
	}
	if s, err := NewSchedulerByName("sequential", 0); err != nil || s.Name() == "" {
		t.Errorf("NewSchedulerByName(sequential) = %v, %v", s, err)
	}
}

// newEngines returns the scheduler-backed engines added by the event-loop
// refactor, for the shared behavioural tests below.
func newEngines() []Engine {
	return []Engine{NewRoundRobinEngine(), NewAdversarialEngine(DefaultAdversarialBound)}
}

func TestNewEnginesTokenRing(t *testing.T) {
	for _, eng := range newEngines() {
		for _, n := range []int{1, 2, 3, 8, 64} {
			res, err := eng.Run(Config{Mode: Unidirectional, RequireVerdict: true}, tokenNodes(n))
			if err != nil {
				t.Fatalf("%s n=%d: %v", eng.Name(), n, err)
			}
			if res.Verdict != VerdictAccept || res.Stats.Messages != n || res.Stats.Bits != n {
				t.Errorf("%s n=%d: verdict=%v messages=%d bits=%d",
					eng.Name(), n, res.Verdict, res.Stats.Messages, res.Stats.Bits)
			}
		}
	}
}

func TestNewEnginesBidirectionalBounce(t *testing.T) {
	for _, eng := range newEngines() {
		n := 7
		nodes := make([]Node, n)
		for i := range nodes {
			nodes[i] = &bounceNode{leader: i == LeaderIndex}
		}
		res, err := eng.Run(Config{Mode: Bidirectional, RequireVerdict: true}, nodes)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if res.Verdict != VerdictAccept || res.Stats.Messages != 4 {
			t.Errorf("%s: verdict=%v messages=%d", eng.Name(), res.Verdict, res.Stats.Messages)
		}
	}
}

func TestNewEnginesGuardsAndQuiescence(t *testing.T) {
	for _, eng := range newEngines() {
		flood := make([]Node, 5)
		for i := range flood {
			flood[i] = &floodOnceNode{}
		}
		res, err := eng.Run(Config{Initiators: AllProcessors}, flood)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if res.Verdict != VerdictNone || res.Stats.Messages != 5 {
			t.Errorf("%s: verdict=%v messages=%d", eng.Name(), res.Verdict, res.Stats.Messages)
		}

		loop := make([]Node, 4)
		for i := range loop {
			loop[i] = &loopForeverNode{leader: i == LeaderIndex}
		}
		if _, err := eng.Run(Config{MaxMessages: 50}, loop); !errors.Is(err, ErrMessageBudgetExceeded) {
			t.Errorf("%s: err = %v, want ErrMessageBudgetExceeded", eng.Name(), err)
		}
		if _, err := eng.Run(Config{}, nil); !errors.Is(err, ErrNoProcessors) {
			t.Errorf("%s: err = %v, want ErrNoProcessors", eng.Name(), err)
		}
		bad := []Node{&illegalBackwardNode{leader: true}, &illegalBackwardNode{}}
		if _, err := eng.Run(Config{Mode: Unidirectional}, bad); !errors.Is(err, ErrBackwardInUnidirectional) {
			t.Errorf("%s: err = %v, want ErrBackwardInUnidirectional", eng.Name(), err)
		}
	}
}

func TestNewEnginesMatchSequentialAccounting(t *testing.T) {
	for _, n := range []int{3, 9, 21} {
		build := func() []Node {
			nodes := make([]Node, n)
			for i := range nodes {
				nodes[i] = &incrementNode{leader: i == LeaderIndex, want: uint64(n)}
			}
			return nodes
		}
		seq, err := NewSequentialEngine().Run(Config{RequireVerdict: true}, build())
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range newEngines() {
			res, err := eng.Run(Config{RequireVerdict: true}, build())
			if err != nil {
				t.Fatalf("%s n=%d: %v", eng.Name(), n, err)
			}
			if res.Stats.Bits != seq.Stats.Bits || res.Verdict != seq.Verdict {
				t.Errorf("%s n=%d: accounting mismatch (bits %d vs %d)",
					eng.Name(), n, res.Stats.Bits, seq.Stats.Bits)
			}
		}
	}
}

func TestScheduledEngineIsReusableAcrossRuns(t *testing.T) {
	eng := NewAdversarialEngine(3)
	for run := 0; run < 3; run++ {
		res, err := eng.Run(Config{RequireVerdict: true}, tokenNodes(10))
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if res.Stats.Messages != 10 {
			t.Errorf("run %d: messages = %d, want 10 (state leaked between runs?)", run, res.Stats.Messages)
		}
	}
}

func TestTraceRecordingOnScheduledEngines(t *testing.T) {
	for _, eng := range newEngines() {
		res, err := eng.Run(Config{RecordTrace: true, RequireVerdict: true}, tokenNodes(4))
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if len(res.Trace) == 0 {
			t.Fatalf("%s: expected a non-empty trace", eng.Name())
		}
		for i, ev := range res.Trace {
			if ev.Seq != i {
				t.Errorf("%s: trace seq %d at index %d", eng.Name(), ev.Seq, i)
			}
		}
		if res.Trace[len(res.Trace)-1].Kind != EventVerdict {
			t.Errorf("%s: last trace event should be the verdict", eng.Name())
		}

		off, err := eng.Run(Config{RequireVerdict: true}, tokenNodes(4))
		if err != nil {
			t.Fatal(err)
		}
		if off.Trace != nil {
			t.Errorf("%s: trace should be nil when recording is off", eng.Name())
		}
	}
}
