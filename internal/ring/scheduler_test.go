package ring

import (
	"errors"
	"testing"

	"ringlang/internal/bits"
)

// tagged builds a Delivery consistent with the given link id (the queues
// recompute endpoints from the id, so To/From must match it) carrying tag as
// an 8-bit payload, which is how these unit tests track ordering.
func tagged(link, tag int) Delivery {
	var w bits.Writer
	for i := 7; i >= 0; i-- {
		w.WriteBool(tag>>uint(i)&1 == 1)
	}
	return Delivery{To: link >> 1, From: Direction(link&1 + 1), Payload: w.String()}
}

// tagOf decodes a tagged delivery's payload.
func tagOf(d Delivery) int {
	tag := 0
	for i := 0; i < 8; i++ {
		b, _ := d.Payload.Bit(i)
		tag <<= 1
		if b {
			tag |= 1
		}
	}
	return tag
}

func TestFifoQueuePushPopWrapAndGrow(t *testing.T) {
	var q fifoQueue
	if q.len() != 0 {
		t.Fatal("new queue should be empty")
	}
	payload := oneBit()
	// Interleave pushes and pops so the slot ring's head wraps around the
	// buffer, then grow past the initial capacity.
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			q.push(round*100+i, Forward, payload)
		}
		for i := 0; i < 100; i++ {
			if got := q.pop(); got.To != round*100+i || got.From != Forward {
				t.Fatalf("round %d: pop = %+v, want To=%d", round, got, round*100+i)
			}
		}
	}
	q.push(7, Forward, payload)
	q.reset()
	if q.len() != 0 {
		t.Error("reset should empty the queue")
	}
}

// TestFifoQueuePayloadArenaIntegrity drives the payload arena through wraps,
// contiguity padding and mid-flight growth with variable-length payloads, and
// checks every popped view still decodes to the bits that were pushed.
func TestFifoQueuePayloadArenaIntegrity(t *testing.T) {
	mk := func(i int) bits.String {
		var w bits.Writer
		for b := 0; b <= i%23; b++ {
			w.WriteBool((i>>uint(b%8))&1 == 1)
		}
		return w.String()
	}
	var q fifoQueue
	next, popped := 0, 0
	for next < 600 {
		for k := 0; k < 3 && next < 600; k++ {
			q.push(next&7, Backward, mk(next))
			next++
		}
		// Keep one message in flight so the arena head trails the tail and
		// wrap padding actually happens.
		for q.len() > 1 {
			d := q.pop()
			if !d.Payload.Equal(mk(popped)) {
				t.Fatalf("message %d: payload = %v, want %v", popped, d.Payload, mk(popped))
			}
			popped++
		}
	}
	for q.len() > 0 {
		d := q.pop()
		if !d.Payload.Equal(mk(popped)) {
			t.Fatalf("drain %d: payload = %v, want %v", popped, d.Payload, mk(popped))
		}
		popped++
	}
	if popped != 600 {
		t.Fatalf("popped %d messages, want 600", popped)
	}
}

func TestSchedulersPreservePerLinkFIFO(t *testing.T) {
	scheds := []Scheduler{
		NewFIFOScheduler(),
		NewRandomScheduler(42),
		NewRoundRobinScheduler(),
		NewAdversarialScheduler(3),
	}
	for _, s := range scheds {
		s.Reset(8)
		// Three messages on link 2 interleaved with traffic on links 0 and 5.
		s.Push(2, tagged(2, 20))
		s.Push(0, tagged(0, 1))
		s.Push(2, tagged(2, 21))
		s.Push(5, tagged(5, 50))
		s.Push(2, tagged(2, 22))
		var link2 []int
		for {
			d, ok := s.Next()
			if !ok {
				break
			}
			if tag := tagOf(d); tag >= 20 && tag < 30 {
				link2 = append(link2, tag)
			}
		}
		if len(link2) != 3 || link2[0] != 20 || link2[1] != 21 || link2[2] != 22 {
			t.Errorf("%s: link 2 deliveries out of FIFO order: %v", s.Name(), link2)
		}
		if _, ok := s.Next(); ok {
			t.Errorf("%s: Next on a drained scheduler should report no delivery", s.Name())
		}
	}
}

func TestSchedulerResetDiscardsState(t *testing.T) {
	scheds := []Scheduler{
		NewFIFOScheduler(),
		NewRandomScheduler(1),
		NewRoundRobinScheduler(),
		NewAdversarialScheduler(2),
	}
	for _, s := range scheds {
		s.Reset(4)
		s.Push(1, tagged(1, 1))
		s.Push(3, tagged(3, 3))
		s.Reset(4)
		if d, ok := s.Next(); ok {
			t.Errorf("%s: Reset leaked a pending delivery: %+v", s.Name(), d)
		}
	}
}

func TestRoundRobinCyclesLinks(t *testing.T) {
	s := NewRoundRobinScheduler()
	s.Reset(6)
	// Two messages each on links 1 and 4; round-robin must alternate links
	// rather than drain one first.
	s.Push(1, tagged(1, 10))
	s.Push(1, tagged(1, 11))
	s.Push(4, tagged(4, 40))
	s.Push(4, tagged(4, 41))
	var order []int
	for {
		d, ok := s.Next()
		if !ok {
			break
		}
		order = append(order, tagOf(d))
	}
	want := []int{10, 40, 11, 41}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("round-robin order = %v, want %v", order, want)
		}
	}
}

func TestAdversarialPrefersNewestLink(t *testing.T) {
	s := NewAdversarialScheduler(100) // fairness bound far away
	s.Reset(6)
	s.Push(0, tagged(0, 100))
	s.Push(1, tagged(1, 101))
	s.Push(2, tagged(2, 102))
	// Newest-first: link 2, then 1, then 0.
	for _, want := range []int{102, 101, 100} {
		d, ok := s.Next()
		if !ok || tagOf(d) != want {
			t.Fatalf("adversarial delivery tag = %d (ok=%v), want %d", tagOf(d), ok, want)
		}
	}
}

func TestAdversarialFairnessBoundServesOldestLink(t *testing.T) {
	s := NewAdversarialScheduler(2) // every 2nd delivery serves the oldest link
	s.Reset(4)
	s.Push(0, tagged(0, 1)) // oldest
	s.Push(1, tagged(1, 10))
	s.Push(1, tagged(1, 11))
	s.Push(1, tagged(1, 12))
	// Delivery 1: newest link (1). Delivery 2: fairness, oldest link (0).
	first, _ := s.Next()
	second, _ := s.Next()
	if tagOf(first) != 10 || tagOf(second) != 1 {
		t.Errorf("delivery tags = %d, %d; want 10 then 1 (fairness on 2nd)", tagOf(first), tagOf(second))
	}
}

func TestNewEngineByNameAndAliases(t *testing.T) {
	for _, name := range ScheduleNames() {
		eng, err := NewEngineByName(name, 3)
		if err != nil {
			t.Fatalf("NewEngineByName(%q): %v", name, err)
		}
		if eng.Name() == "" {
			t.Errorf("engine for %q has empty name", name)
		}
	}
	for alias, canonical := range map[string]string{
		"fifo":          "sequential",
		"random-order":  "random",
		"bounded-delay": "adversarial",
	} {
		if _, err := NewEngineByName(alias, 0); err != nil {
			t.Errorf("alias %q (for %s) rejected: %v", alias, canonical, err)
		}
	}
	_, err := NewEngineByName("bogus", 0)
	if !errors.Is(err, ErrUnknownSchedule) {
		t.Errorf("expected ErrUnknownSchedule, got %v", err)
	}
	if _, err := NewSchedulerByName("bogus", 0); err == nil {
		t.Error("NewSchedulerByName should reject unknown names")
	}
	if s, err := NewSchedulerByName("sequential", 0); err != nil || s.Name() == "" {
		t.Errorf("NewSchedulerByName(sequential) = %v, %v", s, err)
	}
}

// newEngines returns the scheduler-backed engines added by the event-loop
// refactor, for the shared behavioural tests below.
func newEngines() []Engine {
	return []Engine{NewRoundRobinEngine(), NewAdversarialEngine(DefaultAdversarialBound)}
}

func TestNewEnginesTokenRing(t *testing.T) {
	for _, eng := range newEngines() {
		for _, n := range []int{1, 2, 3, 8, 64} {
			res, err := eng.Run(Config{Mode: Unidirectional, RequireVerdict: true}, tokenNodes(n))
			if err != nil {
				t.Fatalf("%s n=%d: %v", eng.Name(), n, err)
			}
			if res.Verdict != VerdictAccept || res.Stats.Messages != n || res.Stats.Bits != n {
				t.Errorf("%s n=%d: verdict=%v messages=%d bits=%d",
					eng.Name(), n, res.Verdict, res.Stats.Messages, res.Stats.Bits)
			}
		}
	}
}

func TestNewEnginesBidirectionalBounce(t *testing.T) {
	for _, eng := range newEngines() {
		n := 7
		nodes := make([]Node, n)
		for i := range nodes {
			nodes[i] = &bounceNode{leader: i == LeaderIndex}
		}
		res, err := eng.Run(Config{Mode: Bidirectional, RequireVerdict: true}, nodes)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if res.Verdict != VerdictAccept || res.Stats.Messages != 4 {
			t.Errorf("%s: verdict=%v messages=%d", eng.Name(), res.Verdict, res.Stats.Messages)
		}
	}
}

func TestNewEnginesGuardsAndQuiescence(t *testing.T) {
	for _, eng := range newEngines() {
		flood := make([]Node, 5)
		for i := range flood {
			flood[i] = &floodOnceNode{}
		}
		res, err := eng.Run(Config{Initiators: AllProcessors}, flood)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if res.Verdict != VerdictNone || res.Stats.Messages != 5 {
			t.Errorf("%s: verdict=%v messages=%d", eng.Name(), res.Verdict, res.Stats.Messages)
		}

		loop := make([]Node, 4)
		for i := range loop {
			loop[i] = &loopForeverNode{leader: i == LeaderIndex}
		}
		if _, err := eng.Run(Config{MaxMessages: 50}, loop); !errors.Is(err, ErrMessageBudgetExceeded) {
			t.Errorf("%s: err = %v, want ErrMessageBudgetExceeded", eng.Name(), err)
		}
		if _, err := eng.Run(Config{}, nil); !errors.Is(err, ErrNoProcessors) {
			t.Errorf("%s: err = %v, want ErrNoProcessors", eng.Name(), err)
		}
		bad := []Node{&illegalBackwardNode{leader: true}, &illegalBackwardNode{}}
		if _, err := eng.Run(Config{Mode: Unidirectional}, bad); !errors.Is(err, ErrBackwardInUnidirectional) {
			t.Errorf("%s: err = %v, want ErrBackwardInUnidirectional", eng.Name(), err)
		}
	}
}

func TestNewEnginesMatchSequentialAccounting(t *testing.T) {
	for _, n := range []int{3, 9, 21} {
		build := func() []Node {
			nodes := make([]Node, n)
			for i := range nodes {
				nodes[i] = &incrementNode{leader: i == LeaderIndex, want: uint64(n)}
			}
			return nodes
		}
		seq, err := NewSequentialEngine().Run(Config{RequireVerdict: true}, build())
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range newEngines() {
			res, err := eng.Run(Config{RequireVerdict: true}, build())
			if err != nil {
				t.Fatalf("%s n=%d: %v", eng.Name(), n, err)
			}
			if res.Stats.Bits != seq.Stats.Bits || res.Verdict != seq.Verdict {
				t.Errorf("%s n=%d: accounting mismatch (bits %d vs %d)",
					eng.Name(), n, res.Stats.Bits, seq.Stats.Bits)
			}
		}
	}
}

func TestScheduledEngineIsReusableAcrossRuns(t *testing.T) {
	eng := NewAdversarialEngine(3)
	for run := 0; run < 3; run++ {
		res, err := eng.Run(Config{RequireVerdict: true}, tokenNodes(10))
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if res.Stats.Messages != 10 {
			t.Errorf("run %d: messages = %d, want 10 (state leaked between runs?)", run, res.Stats.Messages)
		}
	}
}

func TestTraceRecordingOnScheduledEngines(t *testing.T) {
	for _, eng := range newEngines() {
		res, err := eng.Run(Config{RecordTrace: true, RequireVerdict: true}, tokenNodes(4))
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if len(res.Trace) == 0 {
			t.Fatalf("%s: expected a non-empty trace", eng.Name())
		}
		for i, ev := range res.Trace {
			if ev.Seq != i {
				t.Errorf("%s: trace seq %d at index %d", eng.Name(), ev.Seq, i)
			}
		}
		if res.Trace[len(res.Trace)-1].Kind != EventVerdict {
			t.Errorf("%s: last trace event should be the verdict", eng.Name())
		}

		off, err := eng.Run(Config{RequireVerdict: true}, tokenNodes(4))
		if err != nil {
			t.Fatal(err)
		}
		if off.Trace != nil {
			t.Errorf("%s: trace should be nil when recording is off", eng.Name())
		}
	}
}
