package ring

import (
	"fmt"
	"math/rand"

	"ringlang/internal/bits"
)

// RandomOrderEngine is a single-goroutine engine that delivers pending
// messages in a pseudo-random (but seeded, hence reproducible) order instead
// of FIFO. Because the asynchronous model allows any finite message delay,
// every such order is a legal execution; running an algorithm under many
// seeds is how the test suite checks that verdicts and bit totals are
// schedule-independent (and how the adversarial-schedule property tests
// probe algorithms that would only work under FIFO delivery).
//
// Messages on the same directed link still respect FIFO order (links are
// channels; they do not reorder), matching the concurrent engine's link
// semantics.
type RandomOrderEngine struct {
	seed int64
}

var _ Engine = (*RandomOrderEngine)(nil)

// NewRandomOrderEngine returns an engine whose delivery order is determined
// by the seed.
func NewRandomOrderEngine(seed int64) *RandomOrderEngine {
	return &RandomOrderEngine{seed: seed}
}

// Name implements Engine.
func (e *RandomOrderEngine) Name() string { return fmt.Sprintf("random-order(seed=%d)", e.seed) }

// Run implements Engine.
func (e *RandomOrderEngine) Run(cfg Config, nodes []Node) (*Result, error) {
	cfg, err := cfg.normalize(len(nodes))
	if err != nil {
		return nil, err
	}
	n := len(nodes)
	rng := rand.New(rand.NewSource(e.seed))
	stats := newStats(n)
	var trace Trace
	seq := 0
	addEvent := func(ev Event) {
		if !cfg.RecordTrace {
			return
		}
		ev.Seq = seq
		trace = append(trace, ev)
	}

	verdict := VerdictNone
	contexts := make([]*Context, n)
	for i := range contexts {
		idx := i
		contexts[i] = &Context{
			isLeader: idx == LeaderIndex,
			decide: func(v Verdict) error {
				if verdict != VerdictNone {
					return ErrAlreadyDecided
				}
				verdict = v
				addEvent(Event{Kind: EventVerdict, Processor: idx, Verdict: v})
				seq++
				return nil
			},
		}
	}

	// Per-directed-link FIFO queues; the scheduler picks a random non-empty
	// link and delivers its head.
	type linkKey struct {
		to   int
		from Direction
	}
	queues := make(map[linkKey][]bits.String)
	var nonEmpty []linkKey
	push := func(key linkKey, payload bits.String) {
		q := queues[key]
		if len(q) == 0 {
			nonEmpty = append(nonEmpty, key)
		}
		queues[key] = append(q, payload)
	}
	dispatch := func(fromProc int, sends []Send) error {
		for _, s := range sends {
			if err := validateSend(cfg, s); err != nil {
				return fmt.Errorf("processor %d: %w", fromProc, err)
			}
			to := neighbour(fromProc, s.Dir, n)
			stats.record(fromProc, to, s.Payload)
			addEvent(Event{Kind: EventSend, Processor: fromProc, Dir: s.Dir, Payload: s.Payload})
			seq++
			push(linkKey{to: to, from: arrivalDirection(s.Dir)}, s.Payload)
		}
		return nil
	}

	for i := 0; i < n; i++ {
		if cfg.Initiators == LeaderOnly && i != LeaderIndex {
			continue
		}
		addEvent(Event{Kind: EventStart, Processor: i})
		seq++
		sends, err := nodes[i].Start(contexts[i])
		if err != nil {
			return nil, fmt.Errorf("ring: start of processor %d: %w", i, err)
		}
		if err := dispatch(i, sends); err != nil {
			return nil, err
		}
		if verdict != VerdictNone {
			break
		}
	}

	delivered := 0
	for len(nonEmpty) > 0 && verdict == VerdictNone {
		if delivered >= cfg.MaxMessages {
			return nil, fmt.Errorf("%w: %d messages", ErrMessageBudgetExceeded, delivered)
		}
		// Pick a random non-empty link and deliver its head message.
		idx := rng.Intn(len(nonEmpty))
		key := nonEmpty[idx]
		q := queues[key]
		payload := q[0]
		q = q[1:]
		queues[key] = q
		if len(q) == 0 {
			nonEmpty[idx] = nonEmpty[len(nonEmpty)-1]
			nonEmpty = nonEmpty[:len(nonEmpty)-1]
		}
		delivered++
		addEvent(Event{Kind: EventReceive, Processor: key.to, Dir: key.from, Payload: payload})
		seq++
		sends, err := nodes[key.to].Receive(contexts[key.to], key.from, payload)
		if err != nil {
			return nil, fmt.Errorf("ring: receive at processor %d: %w", key.to, err)
		}
		if verdict != VerdictNone {
			break
		}
		if err := dispatch(key.to, sends); err != nil {
			return nil, err
		}
	}

	if cfg.RequireVerdict && verdict == VerdictNone {
		return nil, ErrNoVerdict
	}
	return &Result{Verdict: verdict, Stats: stats, Trace: trace}, nil
}
