package ring

import "fmt"

// RandomOrderEngine is a single-goroutine engine that delivers pending
// messages in a pseudo-random (but seeded, hence reproducible) order instead
// of FIFO: the shared event loop under a seeded random scheduler. Because the
// asynchronous model allows any finite message delay, every such order is a
// legal execution; running an algorithm under many seeds is how the test
// suite checks that verdicts and bit totals are schedule-independent.
//
// Messages on the same directed link still respect FIFO order (links are
// channels; they do not reorder), matching the concurrent engine's link
// semantics.
type RandomOrderEngine struct {
	seed int64
}

var _ StatefulEngine = (*RandomOrderEngine)(nil)

// NewRandomOrderEngine returns an engine whose delivery order is determined
// by the seed.
func NewRandomOrderEngine(seed int64) *RandomOrderEngine {
	return &RandomOrderEngine{seed: seed}
}

// Name implements Engine.
//
//ring:coldpath -- label rendering; called at setup and in error reports, never per message
func (e *RandomOrderEngine) Name() string { return fmt.Sprintf("random-order(seed=%d)", e.seed) }

// Run implements Engine.
//
//ring:coldpath -- per-run entry point; the delivery loop below carries its own //ring:hotpath roots
func (e *RandomOrderEngine) Run(cfg Config, nodes []Node) (*Result, error) {
	return runLoop(cfg, nodes, &randomScheduler{seed: e.seed}, nil)
}

// RunWith implements StatefulEngine. The scheduler re-seeds on every Reset,
// so a reused scheduler produces the identical delivery order each run.
//
//ring:coldpath -- per-run entry point; the delivery loop below carries its own //ring:hotpath roots
func (e *RandomOrderEngine) RunWith(st *RunState, cfg Config, nodes []Node) (*Result, error) {
	return runLoop(cfg, nodes, st.scheduler(e, func() Scheduler { return NewRandomScheduler(e.seed) }), st)
}
