package ring

import (
	"errors"
	"fmt"
)

// This file is the prefix-checkpoint subsystem: a Checkpoint freezes an
// execution after a chosen number of deliveries and a later run resumes from
// it instead of replaying the prefix. The paper's recognizers consume the
// word left-to-right — delivery j of a forward token folds letter j — so two
// words sharing a k-letter prefix perform byte-identical work for the first
// k-1 deliveries under any deterministic, word-independent schedule. The
// checkpoint is the engine-level half of that observation; which deliveries
// a given prefix pins down is the recognizer's business (see
// core.PrefixExtendable).
//
// A Checkpoint is immutable once captured: resuming copies its contents into
// the run's own state (stats arrays, scheduler queues, node states), so one
// checkpoint serves any number of continuations concurrently.

// ErrNotPrefixStable is returned when a checkpoint capture or resume is
// requested under a schedule whose delivery order is not prefix-stable (see
// ScheduleIsPrefixStable).
var ErrNotPrefixStable = errors.New("ring: schedule is not prefix-stable")

// ErrNotResumable is returned when a node of the ring does not implement
// PrefixResumable, so its per-run state cannot be captured or restored.
var ErrNotResumable = errors.New("ring: node does not support checkpoint resume")

// ErrCheckpointMismatch is returned when a Checkpoint is resumed against a
// run it was not captured for: a different ring size, topology, initiator
// set, schedule — or a trace-recording run, whose trace could not include
// the prefix's events.
var ErrCheckpointMismatch = errors.New("ring: checkpoint does not match the run")

// ScheduleIsPrefixStable reports whether the named schedule (canonical names
// and aliases of ScheduleNames) delivers messages in an order that depends
// only on the sequence of sends so far — never on the word, the seed, or
// real-time interleaving. Only such schedules may capture and resume
// checkpoints: two runs sharing a send prefix must share the delivery prefix,
// or the saved state would not be the state the cold run reaches.
//
//   - "sequential" (global FIFO) and "round-robin" qualify: their next
//     delivery is a pure function of the queued messages and an internal
//     cursor.
//   - "random" is reproducible per seed but the paper's memoization folds
//     seeds together, and a seeded order is exactly the kind of hidden input
//     a checkpoint must not bake in; it falls back to cold runs.
//   - "adversarial" is deterministic but its newest-first hint stacks are
//     deliberately hostile bookkeeping with stale-hint skipping; it is kept
//     off the stable list rather than frozen into a compatibility contract.
//   - "concurrent" and "sharded" race real goroutines: the interleaving is
//     timing-dependent, so no two runs are guaranteed to share a delivery
//     prefix at all.
func ScheduleIsPrefixStable(name string) bool {
	switch CanonicalScheduleName(name) {
	case "sequential", "round-robin":
		return true
	}
	return false
}

// PrefixStableScheduleNames lists the canonical schedule names for which
// ScheduleIsPrefixStable holds, in ScheduleNames order.
func PrefixStableScheduleNames() []string {
	return []string{"sequential", "round-robin"}
}

// PrefixResumable is implemented by Nodes whose per-run mutable state fits a
// single integer, which is what lets a resume install n node states without
// boxing one allocation per processor. The zero state must describe a
// freshly constructed node, and Resume must fully overwrite the per-run
// state (a resumed node may have run before).
//
// The paper's single-token recognizers qualify trivially: a processor's only
// mutable state is how many tokens it has handled.
type PrefixResumable interface {
	Node
	// ResumeState returns the node's per-run state. A fresh node returns 0.
	ResumeState() int64
	// Resume overwrites the node's per-run state with one previously
	// returned by ResumeState on the matching processor of a run that
	// shared this run's prefix.
	Resume(state int64)
}

// checkpointableScheduler is the internal capability checkpoint capture and
// resume need from a Scheduler beyond Push/Next: exposing and restoring the
// delivery cursor. The pending messages themselves are moved through the
// public Push/Next interface. Only prefix-stable schedulers implement it.
type checkpointableScheduler interface {
	Scheduler
	// snapshotCursor returns the scheduler's delivery-order cursor.
	snapshotCursor() int
	// restoreCursor reinstates a cursor returned by snapshotCursor.
	restoreCursor(cursor int)
}

// fifoScheduler: global FIFO has no cursor; re-pushing the drained queue in
// drain order reproduces it exactly.
func (s *fifoScheduler) snapshotCursor() int { return 0 }
func (s *fifoScheduler) restoreCursor(int)   {}

func (s *roundRobinScheduler) snapshotCursor() int      { return s.cursor }
func (s *roundRobinScheduler) restoreCursor(cursor int) { s.cursor = cursor }

// nodeStateRun is one run-length-encoded stretch of identical node states.
// A mid-pass token ring has at most three stretches (leader, visited
// followers, unvisited followers), so the encoding is O(1) for the cases
// checkpoints exist for, and never worse than O(n).
type nodeStateRun struct {
	count int32
	state int64
}

// Checkpoint is a frozen engine execution after a fixed number of
// deliveries: the delivery cursor, the in-flight messages (payloads cloned),
// the dense per-link stats, and the run-length-encoded node states. It is
// captured by RunCheckpointed at a requested boundary and resumed by any
// later run whose own cold execution would reach the identical state —
// which the caller guarantees by only resuming words that share the
// checkpointed prefix under the same prefix-stable schedule.
//
// A Checkpoint is immutable after capture and safe for concurrent resumes.
//
//ring:snapshot
type Checkpoint struct {
	schedule   string
	mode       Mode
	initiators Initiators
	n          int
	delivered  int

	messages       int
	bitsTotal      int
	maxMessageBits int
	// linkMsgs and linkBits are the stats counters trimmed at the last
	// nonzero slot: a checkpoint at delivery k of a forward token run
	// retains ~2k counters instead of 2n.
	linkMsgs []int32
	linkBits []int64

	// pending holds the in-flight deliveries in scheduler drain order with
	// payloads cloned out of the run's arenas; cursor is the scheduler's
	// position. Re-pushing pending in order and restoring the cursor
	// reproduces the scheduler exactly.
	pending []Delivery
	cursor  int

	nodeStates []nodeStateRun
	bytes      int64
}

// Deliveries returns the number of deliveries the checkpointed execution had
// performed — the k of "resume after k deliveries".
func (cp *Checkpoint) Deliveries() int { return cp.delivered }

// Processors returns the ring size the checkpoint was captured on. A
// checkpoint only resumes on a ring of exactly this size.
func (cp *Checkpoint) Processors() int { return cp.n }

// Schedule returns the scheduler name the checkpoint was captured under.
func (cp *Checkpoint) Schedule() string { return cp.schedule }

// Bytes returns the approximate retained size of the checkpoint, the unit
// the prefix store's LRU budget is accounted in.
func (cp *Checkpoint) Bytes() int64 { return cp.bytes }

// checkpointBaseBytes approximates the fixed per-checkpoint footprint
// (struct, slice headers, store bookkeeping); per-delivery and per-link
// costs are added during capture.
const checkpointBaseBytes = 256

// CheckpointRun configures a checkpoint-aware execution. The zero value is a
// plain run.
type CheckpointRun struct {
	// Resume, when non-nil, starts the run from the checkpoint instead of
	// the start phase. The caller must only resume runs whose cold
	// execution would reach the checkpointed state: same nodes-per-word
	// semantics up to the checkpointed prefix, same ring size, topology and
	// schedule. Ring size, mode, initiators and schedule are verified;
	// prefix agreement is the caller's contract.
	Resume *Checkpoint
	// CaptureAfter lists delivery counts at which to capture a checkpoint,
	// in ascending order. Boundaries at or below the resume point are
	// skipped, as are boundaries the run never reaches (early verdict,
	// quiescence). A boundary where the verdict fires during the delivery
	// is not captured: checkpoints freeze undecided executions only.
	CaptureAfter []int
	// OnCapture receives each captured checkpoint synchronously. Nil
	// disables capture.
	OnCapture func(*Checkpoint)
}

// CheckpointEngine is implemented by engines that can capture and resume
// prefix checkpoints: the scheduler-backed engines whose schedule is
// prefix-stable (see ScheduleIsPrefixStable).
type CheckpointEngine interface {
	StatefulEngine
	// RunCheckpointed behaves like RunWith (st may be nil for a transient
	// state) and additionally captures and/or resumes checkpoints as
	// described by run. A zero CheckpointRun makes it exactly RunWith.
	RunCheckpointed(st *RunState, cfg Config, nodes []Node, run CheckpointRun) (*Result, error)
}

// captureCheckpoint freezes the execution between two deliveries: stats,
// node states, and the scheduler's pending messages (drained, cloned, and
// re-pushed so the live run continues unchanged).
//
//ring:coldpath -- runs once per capture interval (CheckpointRun.Every deliveries), never per message
func captureCheckpoint(sched checkpointableScheduler, lp *loopState, nodes []Node, delivered int) (*Checkpoint, error) {
	n := len(nodes)
	cp := &Checkpoint{
		schedule:       sched.Name(),
		mode:           lp.cfg.Mode,
		initiators:     lp.cfg.Initiators,
		n:              n,
		delivered:      delivered,
		messages:       lp.stats.Messages,
		bitsTotal:      lp.stats.Bits,
		maxMessageBits: lp.stats.MaxMessageBits,
		cursor:         sched.snapshotCursor(),
	}
	bytes := int64(checkpointBaseBytes)

	// Node states, run-length encoded.
	for i := 0; i < n; i++ {
		pr, ok := nodes[i].(PrefixResumable)
		if !ok {
			return nil, fmt.Errorf("%w: processor %d (%T)", ErrNotResumable, i, nodes[i])
		}
		s := pr.ResumeState()
		if last := len(cp.nodeStates) - 1; last >= 0 && cp.nodeStates[last].state == s {
			cp.nodeStates[last].count++
		} else {
			cp.nodeStates = append(cp.nodeStates, nodeStateRun{count: 1, state: s})
		}
	}
	bytes += int64(len(cp.nodeStates)) * 16

	// Dense stats, trimmed at the last nonzero message counter (a slot with
	// zero messages has zero bits too).
	last := -1
	for i, m := range lp.stats.linkMsgs {
		if m != 0 {
			last = i
		}
	}
	if last >= 0 {
		cp.linkMsgs = append([]int32(nil), lp.stats.linkMsgs[:last+1]...)
		cp.linkBits = append([]int64(nil), lp.stats.linkBits[:last+1]...)
		bytes += int64(last+1) * 12
	}

	// In-flight messages: drain in schedule order, clone each payload (pop
	// views into the FIFO arena die on the next pop), then re-push the
	// clones and restore the cursor so the live run proceeds as if nothing
	// happened. Re-pushed payloads are either copied into the arena (FIFO)
	// or referenced read-only (link queues), so the checkpoint's own clones
	// stay immutable either way.
	for {
		d, ok := sched.Next()
		if !ok {
			break
		}
		d.Payload = d.Payload.Clone()
		cp.pending = append(cp.pending, d)
		bytes += int64(len(d.Payload.Raw())) + 48
	}
	for _, d := range cp.pending {
		sched.Push(linkIndex(d.To, d.From), d)
	}
	sched.restoreCursor(cp.cursor)

	cp.bytes = bytes
	return cp, nil
}

// restoreCheckpoint installs cp into a freshly reset run: stats counters,
// node states, scheduler queues and cursor. It copies out of the checkpoint
// and never aliases it, so concurrent resumes of one checkpoint are safe.
//
//ring:hotpath guard=TestCheckpointResumeAllocRegressionGuard
func restoreCheckpoint(cp *Checkpoint, cfg Config, nodes []Node, sched checkpointableScheduler, lp *loopState) error {
	switch {
	case cp.n != len(nodes):
		return fmt.Errorf("%w: captured on %d processors, resumed on %d", ErrCheckpointMismatch, cp.n, len(nodes))
	case cp.mode != cfg.Mode:
		return fmt.Errorf("%w: captured mode %v, resumed mode %v", ErrCheckpointMismatch, cp.mode, cfg.Mode)
	case cp.initiators != cfg.Initiators:
		return fmt.Errorf("%w: captured initiators %v, resumed initiators %v", ErrCheckpointMismatch, cp.initiators, cfg.Initiators)
	case cp.schedule != sched.Name():
		return fmt.Errorf("%w: captured under schedule %q, resumed under %q", ErrCheckpointMismatch, cp.schedule, sched.Name())
	case cfg.RecordTrace:
		return fmt.Errorf("%w: a resumed run cannot record a trace (the prefix's events were not replayed)", ErrCheckpointMismatch)
	}

	lp.stats.Messages = cp.messages
	lp.stats.Bits = cp.bitsTotal
	lp.stats.MaxMessageBits = cp.maxMessageBits
	lp.stats.ensureLinks()
	copy(lp.stats.linkMsgs, cp.linkMsgs)
	copy(lp.stats.linkBits, cp.linkBits)

	// Every node's state is installed — including zero runs — so resuming
	// onto nodes that ran before is as correct as resuming onto fresh ones.
	idx := 0
	for _, run := range cp.nodeStates {
		for k := int32(0); k < run.count; k++ {
			pr, ok := nodes[idx].(PrefixResumable)
			if !ok {
				return fmt.Errorf("%w: processor %d (%T)", ErrNotResumable, idx, nodes[idx])
			}
			pr.Resume(run.state)
			idx++
		}
	}
	if idx != cp.n {
		return fmt.Errorf("%w: node states cover %d of %d processors", ErrCheckpointMismatch, idx, cp.n)
	}

	for i := range cp.pending {
		d := cp.pending[i]
		sched.Push(linkIndex(d.To, d.From), d)
	}
	sched.restoreCursor(cp.cursor)
	return nil
}
