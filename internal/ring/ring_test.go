package ring

import (
	"errors"
	"testing"

	"ringlang/internal/bits"
)

// tokenNode implements the simplest possible recognition-shaped algorithm: a
// single one-bit token travels once around the ring and the leader accepts
// when it returns. It uses the zero-allocation payload path (Context.Writer +
// Context.Reply), so the engine benchmarks measure the loop, not the nodes.
type tokenNode struct {
	leader bool
}

func (t *tokenNode) Start(ctx *Context) ([]Send, error) {
	if !t.leader {
		return nil, nil
	}
	w := ctx.Writer()
	w.WriteBool(true)
	return ctx.Reply(Forward, w.BitString()), nil
}

func (t *tokenNode) Receive(ctx *Context, from Direction, payload bits.String) ([]Send, error) {
	if t.leader {
		return nil, ctx.Accept()
	}
	return ctx.Reply(Forward, payload), nil
}

func tokenNodes(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &tokenNode{leader: i == LeaderIndex}
	}
	return nodes
}

// incrementNode passes a delta-coded counter around the ring; the leader
// rejects if the count disagrees with the ring size it knows from the test.
type incrementNode struct {
	leader bool
	want   uint64
}

func (c *incrementNode) Start(ctx *Context) ([]Send, error) {
	if !c.leader {
		return nil, nil
	}
	var w bits.Writer
	w.WriteDeltaValue(1)
	return []Send{SendForward(w.String())}, nil
}

func (c *incrementNode) Receive(ctx *Context, from Direction, payload bits.String) ([]Send, error) {
	r := bits.NewReader(payload)
	v, err := r.ReadDeltaValue()
	if err != nil {
		return nil, err
	}
	if c.leader {
		if v == c.want {
			return nil, ctx.Accept()
		}
		return nil, ctx.Reject()
	}
	var w bits.Writer
	w.WriteDeltaValue(v + 1)
	return []Send{SendForward(w.String())}, nil
}

// bounceNode exercises bidirectional mode: the leader sends one probe in each
// direction; followers bounce probes straight back; the leader accepts once
// both probes returned.
type bounceNode struct {
	leader   bool
	returned int
}

func (b *bounceNode) Start(ctx *Context) ([]Send, error) {
	if !b.leader {
		return nil, nil
	}
	var w bits.Writer
	w.WriteUint(2, 2)
	return []Send{SendForward(w.String()), SendBackward(w.String())}, nil
}

func (b *bounceNode) Receive(ctx *Context, from Direction, payload bits.String) ([]Send, error) {
	if b.leader {
		b.returned++
		if b.returned == 2 {
			return nil, ctx.Accept()
		}
		return nil, nil
	}
	// Send it back where it came from.
	return []Send{{Dir: from, Payload: payload}}, nil
}

// floodOnceNode is an election-shaped algorithm: every processor initiates
// one forward message; receivers absorb it. No verdict is produced, so the
// run must terminate by quiescence.
type floodOnceNode struct{}

func (f *floodOnceNode) Start(ctx *Context) ([]Send, error) {
	var w bits.Writer
	w.WriteUint(1, 3)
	return []Send{SendForward(w.String())}, nil
}

func (f *floodOnceNode) Receive(ctx *Context, from Direction, payload bits.String) ([]Send, error) {
	return nil, nil
}

// loopForeverNode endlessly forwards the token without deciding, to exercise
// the message budget guard.
type loopForeverNode struct{ leader bool }

func (l *loopForeverNode) Start(ctx *Context) ([]Send, error) {
	if !l.leader {
		return nil, nil
	}
	var w bits.Writer
	w.WriteBool(true)
	return []Send{SendForward(w.String())}, nil
}

func (l *loopForeverNode) Receive(ctx *Context, from Direction, payload bits.String) ([]Send, error) {
	return []Send{SendForward(payload)}, nil
}

// illegalBackwardNode sends backward on a unidirectional ring.
type illegalBackwardNode struct{ leader bool }

func (i *illegalBackwardNode) Start(ctx *Context) ([]Send, error) {
	if !i.leader {
		return nil, nil
	}
	var w bits.Writer
	w.WriteBool(true)
	return []Send{SendBackward(w.String())}, nil
}

func (i *illegalBackwardNode) Receive(ctx *Context, from Direction, payload bits.String) ([]Send, error) {
	return nil, nil
}

// rogueDeciderNode has a non-leader attempt to accept.
type rogueDeciderNode struct{ leader bool }

func (r *rogueDeciderNode) Start(ctx *Context) ([]Send, error) {
	if !r.leader {
		return nil, nil
	}
	var w bits.Writer
	w.WriteBool(true)
	return []Send{SendForward(w.String())}, nil
}

func (r *rogueDeciderNode) Receive(ctx *Context, from Direction, payload bits.String) ([]Send, error) {
	if !r.leader {
		if err := ctx.Accept(); err != nil {
			return nil, err
		}
	}
	return nil, ctx.Accept()
}

func engines() []Engine {
	return []Engine{NewSequentialEngine(), NewConcurrentEngine()}
}

func TestTokenAroundRing(t *testing.T) {
	for _, eng := range engines() {
		for _, n := range []int{1, 2, 3, 8, 64} {
			res, err := eng.Run(Config{Mode: Unidirectional, RequireVerdict: true}, tokenNodes(n))
			if err != nil {
				t.Fatalf("%s n=%d: %v", eng.Name(), n, err)
			}
			if res.Verdict != VerdictAccept {
				t.Errorf("%s n=%d verdict = %v", eng.Name(), n, res.Verdict)
			}
			if res.Stats.Messages != n {
				t.Errorf("%s n=%d messages = %d, want %d", eng.Name(), n, res.Stats.Messages, n)
			}
			if res.Stats.Bits != n {
				t.Errorf("%s n=%d bits = %d, want %d", eng.Name(), n, res.Stats.Bits, n)
			}
			if res.Stats.MaxMessageBits != 1 {
				t.Errorf("%s n=%d max message bits = %d, want 1", eng.Name(), n, res.Stats.MaxMessageBits)
			}
		}
	}
}

func TestCounterRing(t *testing.T) {
	for _, eng := range engines() {
		for _, n := range []int{1, 2, 5, 33} {
			nodes := make([]Node, n)
			for i := range nodes {
				nodes[i] = &incrementNode{leader: i == LeaderIndex, want: uint64(n)}
			}
			res, err := eng.Run(Config{Mode: Unidirectional, RequireVerdict: true}, nodes)
			if err != nil {
				t.Fatalf("%s n=%d: %v", eng.Name(), n, err)
			}
			if res.Verdict != VerdictAccept {
				t.Errorf("%s n=%d: counter algorithm rejected", eng.Name(), n)
			}
		}
	}
}

func TestSequentialConcurrentBitEquivalence(t *testing.T) {
	for _, n := range []int{2, 7, 20} {
		nodes1 := make([]Node, n)
		nodes2 := make([]Node, n)
		for i := range nodes1 {
			nodes1[i] = &incrementNode{leader: i == LeaderIndex, want: uint64(n)}
			nodes2[i] = &incrementNode{leader: i == LeaderIndex, want: uint64(n)}
		}
		seq, err := NewSequentialEngine().Run(Config{RequireVerdict: true}, nodes1)
		if err != nil {
			t.Fatal(err)
		}
		conc, err := NewConcurrentEngine().Run(Config{RequireVerdict: true}, nodes2)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Verdict != conc.Verdict {
			t.Errorf("n=%d verdict mismatch: %v vs %v", n, seq.Verdict, conc.Verdict)
		}
		if seq.Stats.Bits != conc.Stats.Bits || seq.Stats.Messages != conc.Stats.Messages {
			t.Errorf("n=%d stats mismatch: seq %d bits/%d msgs, conc %d bits/%d msgs",
				n, seq.Stats.Bits, seq.Stats.Messages, conc.Stats.Bits, conc.Stats.Messages)
		}
	}
}

func TestBidirectionalBounce(t *testing.T) {
	for _, eng := range engines() {
		n := 6
		nodes := make([]Node, n)
		for i := range nodes {
			nodes[i] = &bounceNode{leader: i == LeaderIndex}
		}
		res, err := eng.Run(Config{Mode: Bidirectional, RequireVerdict: true}, nodes)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if res.Verdict != VerdictAccept {
			t.Errorf("%s: verdict = %v", eng.Name(), res.Verdict)
		}
		if res.Stats.Messages != 4 {
			t.Errorf("%s: messages = %d, want 4 (two probes, two bounces)", eng.Name(), res.Stats.Messages)
		}
		if res.Stats.Bits != 8 {
			t.Errorf("%s: bits = %d, want 8", eng.Name(), res.Stats.Bits)
		}
	}
}

func TestQuiescenceWithoutVerdict(t *testing.T) {
	for _, eng := range engines() {
		n := 9
		nodes := make([]Node, n)
		for i := range nodes {
			nodes[i] = &floodOnceNode{}
		}
		res, err := eng.Run(Config{Mode: Unidirectional, Initiators: AllProcessors}, nodes)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if res.Verdict != VerdictNone {
			t.Errorf("%s: verdict = %v, want none", eng.Name(), res.Verdict)
		}
		if res.Stats.Messages != n {
			t.Errorf("%s: messages = %d, want %d", eng.Name(), res.Stats.Messages, n)
		}
		if res.Stats.Bits != 3*n {
			t.Errorf("%s: bits = %d, want %d", eng.Name(), res.Stats.Bits, 3*n)
		}
	}
}

func TestRequireVerdictFailsOnQuiescence(t *testing.T) {
	for _, eng := range engines() {
		nodes := make([]Node, 4)
		for i := range nodes {
			nodes[i] = &floodOnceNode{}
		}
		_, err := eng.Run(Config{Initiators: AllProcessors, RequireVerdict: true}, nodes)
		if !errors.Is(err, ErrNoVerdict) {
			t.Errorf("%s: err = %v, want ErrNoVerdict", eng.Name(), err)
		}
	}
}

func TestMessageBudgetGuard(t *testing.T) {
	for _, eng := range engines() {
		n := 5
		nodes := make([]Node, n)
		for i := range nodes {
			nodes[i] = &loopForeverNode{leader: i == LeaderIndex}
		}
		_, err := eng.Run(Config{MaxMessages: 100}, nodes)
		if !errors.Is(err, ErrMessageBudgetExceeded) {
			t.Errorf("%s: err = %v, want ErrMessageBudgetExceeded", eng.Name(), err)
		}
	}
}

func TestBackwardSendRejectedInUnidirectionalMode(t *testing.T) {
	for _, eng := range engines() {
		nodes := []Node{&illegalBackwardNode{leader: true}, &illegalBackwardNode{}, &illegalBackwardNode{}}
		_, err := eng.Run(Config{Mode: Unidirectional}, nodes)
		if !errors.Is(err, ErrBackwardInUnidirectional) {
			t.Errorf("%s: err = %v, want ErrBackwardInUnidirectional", eng.Name(), err)
		}
	}
}

func TestNonLeaderCannotDecide(t *testing.T) {
	for _, eng := range engines() {
		nodes := []Node{&rogueDeciderNode{leader: true}, &rogueDeciderNode{}, &rogueDeciderNode{}}
		_, err := eng.Run(Config{}, nodes)
		if !errors.Is(err, ErrNotLeader) {
			t.Errorf("%s: err = %v, want ErrNotLeader", eng.Name(), err)
		}
	}
}

func TestEmptyRingRejected(t *testing.T) {
	for _, eng := range engines() {
		if _, err := eng.Run(Config{}, nil); !errors.Is(err, ErrNoProcessors) {
			t.Errorf("%s: err = %v, want ErrNoProcessors", eng.Name(), err)
		}
	}
}

func TestTraceRecording(t *testing.T) {
	n := 4
	res, err := NewSequentialEngine().Run(Config{RecordTrace: true, RequireVerdict: true}, tokenNodes(n))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("expected a non-empty trace")
	}
	var starts, sends, receives, verdicts int
	for i, ev := range res.Trace {
		if ev.Seq != i {
			t.Errorf("trace seq %d out of order (index %d)", ev.Seq, i)
		}
		switch ev.Kind {
		case EventStart:
			starts++
		case EventSend:
			sends++
		case EventReceive:
			receives++
		case EventVerdict:
			verdicts++
		}
	}
	if starts != 1 || sends != n || receives != n || verdicts != 1 {
		t.Errorf("trace composition starts=%d sends=%d receives=%d verdicts=%d", starts, sends, receives, verdicts)
	}
	if res.Trace[len(res.Trace)-1].Kind != EventVerdict {
		t.Error("last trace event should be the verdict")
	}
}

func TestPerLinkStats(t *testing.T) {
	n := 5
	res, err := NewSequentialEngine().Run(Config{RequireVerdict: true}, tokenNodes(n))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.PerLink()) != n {
		t.Fatalf("expected %d used links, got %d", n, len(res.Stats.PerLink()))
	}
	if got := res.Stats.Links(); len(got) != n {
		t.Fatalf("expected %d links from Links(), got %d", n, len(got))
	}
	for key, ls := range res.Stats.PerLink() {
		if ls.Messages != 1 || ls.Bits != 1 {
			t.Errorf("link %v stats = %+v, want 1 message / 1 bit", key, ls)
		}
		if neighbour(ls.From, Forward, n) != ls.To {
			t.Errorf("link %v is not a forward ring edge", key)
		}
	}
	min, ok := res.Stats.MinLinkBits()
	if !ok || min.Bits != 1 {
		t.Errorf("MinLinkBits = %+v/%v", min, ok)
	}
	if got := res.Stats.BitsPerProcessor(); got != 1 {
		t.Errorf("BitsPerProcessor = %f, want 1", got)
	}
}

func TestDirectionHelpers(t *testing.T) {
	if Forward.Opposite() != Backward || Backward.Opposite() != Forward {
		t.Error("Opposite broken")
	}
	if neighbour(0, Forward, 5) != 1 || neighbour(0, Backward, 5) != 4 || neighbour(4, Forward, 5) != 0 {
		t.Error("neighbour indexing broken")
	}
	if arrivalDirection(Forward) != Backward {
		t.Error("arrivalDirection broken")
	}
	if Forward.String() == "" || VerdictAccept.String() == "" || Unidirectional.String() == "" || EventSend.String() == "" {
		t.Error("String methods should be non-empty")
	}
}

func TestSingleProcessorRing(t *testing.T) {
	// A ring of size 1: the leader's forward neighbour is itself.
	for _, eng := range engines() {
		res, err := eng.Run(Config{RequireVerdict: true}, tokenNodes(1))
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if res.Verdict != VerdictAccept || res.Stats.Messages != 1 {
			t.Errorf("%s: verdict=%v messages=%d", eng.Name(), res.Verdict, res.Stats.Messages)
		}
	}
}
