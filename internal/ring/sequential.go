package ring

// SequentialEngine is the deterministic, single-goroutine engine: the shared
// event loop under a global-FIFO scheduler. FIFO delivery is a legal
// asynchronous schedule; for the paper's unidirectional leader-initiated
// algorithms it is exactly the unique execution described in Section 2.
type SequentialEngine struct{}

var _ StatefulEngine = (*SequentialEngine)(nil)

// NewSequentialEngine returns a deterministic engine.
func NewSequentialEngine() *SequentialEngine {
	return &SequentialEngine{}
}

// Name implements Engine.
func (e *SequentialEngine) Name() string { return "sequential" }

// Run implements Engine.
//
//ring:coldpath -- per-run entry point; the delivery loop below carries its own //ring:hotpath roots
func (e *SequentialEngine) Run(cfg Config, nodes []Node) (*Result, error) {
	return runLoop(cfg, nodes, &fifoScheduler{}, nil)
}

// RunWith implements StatefulEngine.
//
//ring:coldpath -- per-run entry point; the delivery loop below carries its own //ring:hotpath roots
func (e *SequentialEngine) RunWith(st *RunState, cfg Config, nodes []Node) (*Result, error) {
	return runLoop(cfg, nodes, st.scheduler(e, NewFIFOScheduler), st)
}

var _ CheckpointEngine = (*SequentialEngine)(nil)

// RunCheckpointed implements CheckpointEngine: global FIFO is
// prefix-stable, so the sequential engine both captures and resumes.
//
//ring:coldpath -- per-run entry point; the delivery loop below carries its own //ring:hotpath roots
func (e *SequentialEngine) RunCheckpointed(st *RunState, cfg Config, nodes []Node, run CheckpointRun) (*Result, error) {
	if st == nil {
		st = &RunState{}
	}
	return runLoopFrom(cfg, nodes, st.scheduler(e, NewFIFOScheduler), st, run)
}
