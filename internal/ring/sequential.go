package ring

import (
	"fmt"

	"ringlang/internal/bits"
)

// SequentialEngine is a deterministic, single-goroutine event simulator.
// Messages are delivered in FIFO order, which is a legal asynchronous
// schedule; for the paper's unidirectional leader-initiated algorithms it is
// exactly the unique execution described in Section 2.
type SequentialEngine struct{}

var _ Engine = (*SequentialEngine)(nil)

// NewSequentialEngine returns a deterministic engine.
func NewSequentialEngine() *SequentialEngine {
	return &SequentialEngine{}
}

// Name implements Engine.
func (e *SequentialEngine) Name() string { return "sequential" }

// pendingDelivery is an internal queue entry of the sequential engine.
type pendingDelivery struct {
	to      int
	from    Direction
	payload bits.String
}

// Run implements Engine.
func (e *SequentialEngine) Run(cfg Config, nodes []Node) (*Result, error) {
	cfg, err := cfg.normalize(len(nodes))
	if err != nil {
		return nil, err
	}
	n := len(nodes)
	stats := newStats(n)
	var trace Trace
	seq := 0
	addEvent := func(ev Event) {
		if !cfg.RecordTrace {
			return
		}
		ev.Seq = seq
		trace = append(trace, ev)
	}

	verdict := VerdictNone
	contexts := make([]*Context, n)
	for i := range contexts {
		idx := i
		contexts[i] = &Context{
			isLeader: idx == LeaderIndex,
			decide: func(v Verdict) error {
				if verdict != VerdictNone {
					return ErrAlreadyDecided
				}
				verdict = v
				addEvent(Event{Kind: EventVerdict, Processor: idx, Verdict: v})
				seq++
				return nil
			},
		}
	}

	var queue []pendingDelivery
	dispatch := func(fromProc int, sends []Send) error {
		for _, s := range sends {
			if err := validateSend(cfg, s); err != nil {
				return fmt.Errorf("processor %d: %w", fromProc, err)
			}
			to := neighbour(fromProc, s.Dir, n)
			stats.record(fromProc, to, s.Payload)
			addEvent(Event{Kind: EventSend, Processor: fromProc, Dir: s.Dir, Payload: s.Payload})
			seq++
			queue = append(queue, pendingDelivery{
				to:      to,
				from:    arrivalDirection(s.Dir),
				payload: s.Payload,
			})
		}
		return nil
	}

	// Start phase.
	for i := 0; i < n; i++ {
		if cfg.Initiators == LeaderOnly && i != LeaderIndex {
			continue
		}
		addEvent(Event{Kind: EventStart, Processor: i})
		seq++
		sends, err := nodes[i].Start(contexts[i])
		if err != nil {
			return nil, fmt.Errorf("ring: start of processor %d: %w", i, err)
		}
		if err := dispatch(i, sends); err != nil {
			return nil, err
		}
		if verdict != VerdictNone {
			break
		}
	}

	// Delivery loop.
	delivered := 0
	for len(queue) > 0 && verdict == VerdictNone {
		if delivered >= cfg.MaxMessages {
			return nil, fmt.Errorf("%w: %d messages", ErrMessageBudgetExceeded, delivered)
		}
		d := queue[0]
		queue = queue[1:]
		delivered++
		addEvent(Event{Kind: EventReceive, Processor: d.to, Dir: d.from, Payload: d.payload})
		seq++
		sends, err := nodes[d.to].Receive(contexts[d.to], d.from, d.payload)
		if err != nil {
			return nil, fmt.Errorf("ring: receive at processor %d: %w", d.to, err)
		}
		if verdict != VerdictNone {
			// The leader decided while processing this delivery; the paper's
			// model terminates the algorithm at that point.
			break
		}
		if err := dispatch(d.to, sends); err != nil {
			return nil, err
		}
	}

	if cfg.RequireVerdict && verdict == VerdictNone {
		return nil, ErrNoVerdict
	}
	return &Result{Verdict: verdict, Stats: stats, Trace: trace}, nil
}
