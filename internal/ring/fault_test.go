package ring

import (
	"testing"

	"ringlang/internal/bits"
)

// drain pops every pending delivery of a scheduler.
func drain(s Scheduler) []Delivery {
	var out []Delivery
	for {
		d, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, d)
	}
}

func TestLossyDeliversEverythingInLinkOrder(t *testing.T) {
	s := NewLossyScheduler(7, 0.5, 4)
	s.Reset(8)
	want := map[int][]int{1: {10, 11, 12}, 4: {40, 41}, 7: {70}}
	for link, tags := range want {
		for _, tag := range tags {
			s.Push(link, tagged(link, tag))
		}
	}
	got := map[int][]int{}
	total := 0
	for _, d := range drain(s) {
		link := linkIndex(d.To, d.From)
		got[link] = append(got[link], tagOf(d))
		total++
	}
	if total != 6 {
		t.Fatalf("delivered %d messages, want all 6", total)
	}
	for link, tags := range want {
		if len(got[link]) != len(tags) {
			t.Fatalf("link %d: delivered %v, want %v", link, got[link], tags)
		}
		for i, tag := range tags {
			if got[link][i] != tag {
				t.Errorf("link %d: delivery %d = tag %d, want %d (per-link FIFO violated)", link, i, got[link][i], tag)
			}
		}
	}
	fr := s.(*lossyScheduler).takeFaultReport()
	if fr.Dropped == 0 {
		t.Error("drop rate 0.5 over 6 messages dropped nothing; the fate roll is not wired")
	}
	if fr.RetransmitBits != fr.Dropped*8 {
		t.Errorf("RetransmitBits = %d for %d dropped 8-bit frames", fr.RetransmitBits, fr.Dropped)
	}
}

func TestLossyDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) ([]int, FaultReport) {
		s := NewLossyScheduler(seed, 0.4, 3)
		s.Reset(6)
		for link := 0; link < 6; link++ {
			for j := 0; j < 4; j++ {
				s.Push(link, tagged(link, 16*link+j))
			}
		}
		var tags []int
		for _, d := range drain(s) {
			tags = append(tags, tagOf(d))
		}
		return tags, *s.(*lossyScheduler).takeFaultReport()
	}
	aTags, aFaults := run(3)
	bTags, bFaults := run(3)
	if len(aTags) != 24 {
		t.Fatalf("delivered %d of 24 messages", len(aTags))
	}
	if aFaults.Dropped != bFaults.Dropped || aFaults.RetransmitBits != bFaults.RetransmitBits {
		t.Errorf("same seed, different fault reports: %+v vs %+v", aFaults, bFaults)
	}
	for i := range aTags {
		if aTags[i] != bTags[i] {
			t.Fatalf("same seed, different delivery order at %d: %d vs %d", i, aTags[i], bTags[i])
		}
	}
	cTags, _ := run(4)
	same := len(cTags) == len(aTags)
	if same {
		for i := range aTags {
			if cTags[i] != aTags[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 3 and 4 produced identical lossy executions; the seed is not wired")
	}
}

func TestDuplicatingRedeliversAdjacentAndClones(t *testing.T) {
	s := NewDuplicatingScheduler(1, 0.99)
	s.Reset(4)
	link := 3

	// Payloads built on a caller-owned buffer the "sender" overwrites after
	// the original delivery: the duplicate must have been snapshotted.
	buf := []byte{0xAB}
	s.Push(link, Delivery{To: link >> 1, From: Direction(link&1 + 1), Payload: bits.View(buf, 8)})

	first, ok := s.Next()
	if !ok || first.Payload.Raw()[0] != 0xAB {
		t.Fatalf("original delivery = %v %x", ok, first.Payload.Raw())
	}
	buf[0] = 0xFF // sender scratch reuse after delivery
	dup, ok := s.Next()
	if !ok {
		t.Fatal("duplicate was scheduled (rate 0.99) but never delivered")
	}
	if dup.To != first.To || dup.From != first.From {
		t.Errorf("duplicate delivered on a different link: %+v vs %+v", dup, first)
	}
	if dup.Payload.Raw()[0] != 0xAB {
		t.Errorf("duplicate payload = %x, want the snapshot AB; it aliases the sender's buffer", dup.Payload.Raw())
	}
	if _, ok := s.Next(); ok {
		t.Error("a duplicate was itself duplicated; at-least-once must stay bounded")
	}
	fr := s.(*duplicatingScheduler).takeFaultReport()
	if fr.Duplicates != 1 || fr.DuplicateBits != 8 {
		t.Errorf("fault report = %+v, want 1 duplicate of 8 bits", fr)
	}
}

func TestDuplicatingKeepsPerLinkOrder(t *testing.T) {
	s := NewDuplicatingScheduler(5, 0.9)
	s.Reset(2)
	link := 1
	for _, tag := range []int{1, 2, 3} {
		s.Push(link, tagged(link, tag))
	}
	var tags []int
	for _, d := range drain(s) {
		tags = append(tags, tagOf(d))
	}
	// At-least-once with adjacency: each tag appears once or twice, in
	// non-decreasing original order (m, m, m', ...).
	seen := map[int]int{}
	last := 0
	for _, tag := range tags {
		seen[tag]++
		if tag < last {
			t.Fatalf("delivery order %v revisits tag %d after %d; duplicates must stay adjacent", tags, tag, last)
		}
		last = tag
	}
	for _, tag := range []int{1, 2, 3} {
		if seen[tag] < 1 || seen[tag] > 2 {
			t.Errorf("tag %d delivered %d times, want 1 or 2", tag, seen[tag])
		}
	}
}

func TestCrashRepairReroutesPastTheCrash(t *testing.T) {
	sched := NewCrashRepairScheduler(11).(*crashScheduler)
	n := 8
	sched.Reset(numLinks(n))
	c, at := sched.crashProc, sched.crashAt
	if c < 1 || c >= n {
		t.Fatalf("crash processor %d out of range [1, %d)", c, n)
	}

	// Drive `at` deliveries over a link the crash never touches to arm it.
	filler := linkIndex(0, Backward)
	for i := 0; i < at; i++ {
		sched.Push(filler, tagged(filler, i))
	}
	for i := 0; i < at; i++ {
		if _, ok := sched.Next(); !ok {
			t.Fatalf("filler delivery %d missing", i)
		}
	}

	// A frame addressed to the crashed processor, travelling Forward
	// (arriving from its Backward side), must splice to its Forward
	// neighbour with the arrival direction unchanged.
	link := linkIndex(c, Backward)
	sched.Push(link, tagged(link, 99))
	d, ok := sched.Next()
	if !ok {
		t.Fatal("rerouted frame never delivered")
	}
	if want := (c + 1) % n; d.To != want || d.From != Backward {
		t.Errorf("rerouted to processor %d from %v, want %d from Backward", d.To, d.From, want)
	}
	fr := sched.takeFaultReport()
	if len(fr.Crashed) != 1 || fr.Crashed[0] != c || fr.Rerouted != 1 {
		t.Errorf("fault report = %+v, want crashed=[%d] rerouted=1", fr, c)
	}
}

func TestCrashRestartDefersButDeliversEverything(t *testing.T) {
	sched := NewCrashRestartScheduler(11).(*crashScheduler)
	n := 6
	sched.Reset(numLinks(n))
	c, at := sched.crashProc, sched.crashAt

	// Arm the crash on fault-free traffic first, so the frames addressed to
	// the crashed processor are pushed only once the outage has begun.
	filler := linkIndex(0, Backward)
	for i := 0; i < at; i++ {
		sched.Push(filler, tagged(filler, i))
	}
	if got := len(drain(sched)); got != at {
		t.Fatalf("delivered %d of %d filler messages", got, at)
	}
	crashedLink := linkIndex(c, Backward)
	sched.Push(crashedLink, tagged(crashedLink, 101))
	sched.Push(crashedLink, tagged(crashedLink, 102))

	var toCrashed []int
	delivered := 0
	for _, d := range drain(sched) {
		delivered++
		if d.To == c {
			toCrashed = append(toCrashed, tagOf(d))
		}
	}
	if delivered != 2 {
		t.Fatalf("delivered %d of 2 post-crash messages; restart must not lose frames", delivered)
	}
	if len(toCrashed) != 2 || toCrashed[0] != 101 || toCrashed[1] != 102 {
		t.Errorf("crashed processor received %v, want [101 102] in order (buffered replay)", toCrashed)
	}
	fr := sched.takeFaultReport()
	if len(fr.Crashed) != 1 || fr.Crashed[0] != c {
		t.Errorf("fault report = %+v, want crashed=[%d]", fr, c)
	}
	if fr.Deferred == 0 {
		t.Error("no delivery offer was deferred; the outage is not wired")
	}
}

func TestFaultEngineGuaranteesAndReports(t *testing.T) {
	cases := []struct {
		engine Engine
		want   DeliveryGuarantee
	}{
		{NewSequentialEngine(), ExactlyOnce},
		{NewRandomOrderEngine(1), ExactlyOnce},
		{NewRoundRobinEngine(), ExactlyOnce},
		{NewLossyEngine(1, 0, 0), ExactlyOnce},
		{NewCrashRestartEngine(1), ExactlyOnce},
		{NewDuplicatingEngine(1, 0), AtLeastOnce},
		{NewCrashRepairEngine(1), CrashProne},
	}
	for _, tc := range cases {
		if got := EngineDeliveryGuarantee(tc.engine); got != tc.want {
			t.Errorf("EngineDeliveryGuarantee(%s) = %v, want %v", tc.engine.Name(), got, tc.want)
		}
	}

	// Reliable engines attach no fault report; fault engines always do.
	seqRes, err := NewSequentialEngine().Run(Config{Mode: Unidirectional}, tokenNodes(12))
	if err != nil {
		t.Fatal(err)
	}
	if seqRes.Faults != nil {
		t.Errorf("sequential run carries a fault report: %+v", seqRes.Faults)
	}
	lossyRes, err := NewLossyEngine(3, 0.5, 3).Run(Config{Mode: Unidirectional}, tokenNodes(12))
	if err != nil {
		t.Fatal(err)
	}
	if lossyRes.Faults == nil {
		t.Fatal("lossy run carries no fault report")
	}
	if lossyRes.Verdict != seqRes.Verdict || lossyRes.Stats.Bits != seqRes.Stats.Bits {
		t.Errorf("lossy run diverged from sequential: %v/%d vs %v/%d",
			lossyRes.Verdict, lossyRes.Stats.Bits, seqRes.Verdict, seqRes.Stats.Bits)
	}
}

func TestDedupAbsorbsDuplicatingDelivery(t *testing.T) {
	base, err := NewSequentialEngine().Run(Config{Mode: Unidirectional}, WithDedupAll(tokenNodes(16)))
	if err != nil {
		t.Fatal(err)
	}
	// One sequence bit per message on top of the raw token ring.
	raw, err := NewSequentialEngine().Run(Config{Mode: Unidirectional}, tokenNodes(16))
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.Bits != raw.Stats.Bits+raw.Stats.Messages {
		t.Errorf("dedup framing: %d bits, want %d (+1 bit per message over %d)",
			base.Stats.Bits, raw.Stats.Bits+raw.Stats.Messages, raw.Stats.Bits)
	}
	duplicates := 0
	for seed := int64(1); seed <= 5; seed++ {
		res, err := NewDuplicatingEngine(seed, 0.25).Run(Config{Mode: Unidirectional}, WithDedupAll(tokenNodes(16)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Verdict != base.Verdict || res.Stats.Bits != base.Stats.Bits || res.Stats.Messages != base.Stats.Messages {
			t.Errorf("seed %d: dedup run diverged under duplicates: %v/%d bits vs %v/%d",
				seed, res.Verdict, res.Stats.Bits, base.Verdict, base.Stats.Bits)
		}
		duplicates += res.Faults.Duplicates
	}
	if duplicates == 0 {
		t.Error("five seeds at rate 0.25 produced no duplicate; the fate roll is not wired")
	}
}
