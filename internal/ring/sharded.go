package ring

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ringlang/internal/bits"
)

// ShardedEngine executes a run on several cores by partitioning the ring into
// contiguous segments, one worker goroutine per segment. A message whose
// receiver lives in the sender's segment is delivered through the worker's
// local struct-of-arrays FIFO (the same fifoQueue the sequential engine
// uses); the only cross-segment traffic a ring topology admits is over the
// two directed links at each segment boundary, and each of those is carried
// by a dedicated single-producer single-consumer ring with slot-owned
// reusable payload buffers, so the boundary handoff allocates nothing per
// message in steady state.
//
// Determinism: the engine's delivery interleaving is whatever the workers
// race to, which is a legal asynchronous schedule — but every quantity in
// Result and Stats is an order-independent aggregate (sums, maxes and
// per-link counters over the multiset of sends), so for algorithms whose
// send multiset does not depend on the schedule (the entire catalog; pinned
// by the cross-schedule property tests) the Result and Stats are
// bit-identical to the serial loop's. Per-link counters need no
// synchronization: a directed link has exactly one sending processor, hence
// exactly one writing worker. Trace recording is inherently
// order-dependent, so a run with Config.RecordTrace falls back to the serial
// loop, as do rings too small to shard.
//
// Termination uses an in-flight message counter: incremented before a send
// is enqueued, decremented after a delivery is fully processed (its response
// sends already counted), so the counter reaching zero proves global
// quiescence. The start phase runs serially before the workers launch and
// seeds the counter.
type ShardedEngine struct {
	// workers forces the worker count when positive (it is still clamped to
	// the ring size); zero means one worker per available core.
	workers int
}

var _ StatefulEngine = (*ShardedEngine)(nil)

// NewShardedEngine returns a segment-sharded engine using one worker per
// available core.
func NewShardedEngine() *ShardedEngine {
	return &ShardedEngine{}
}

// NewShardedEngineWorkers returns a sharded engine with a fixed worker
// count, which tests use to exercise specific segmentations. Counts below 1
// fall back to the automatic choice.
func NewShardedEngineWorkers(workers int) *ShardedEngine {
	if workers < 1 {
		workers = 0
	}
	return &ShardedEngine{workers: workers}
}

// Name implements Engine.
func (e *ShardedEngine) Name() string { return "sharded" }

// Run implements Engine.
//
//ring:coldpath -- per-run entry point; the worker loops below carry their own //ring:hotpath roots
func (e *ShardedEngine) Run(cfg Config, nodes []Node) (*Result, error) {
	return e.RunWith(NewRunState(), cfg, nodes)
}

// shardedMinSegment is the smallest segment size the automatic worker count
// accepts: below it the boundary-handoff overhead dwarfs the per-segment
// work. Explicit worker counts override it (tests shard tiny rings on
// purpose).
const shardedMinSegment = 1024

// effectiveWorkers resolves the worker count for a ring of n processors.
func (e *ShardedEngine) effectiveWorkers(n int) int {
	if e.workers > 0 {
		if e.workers > n {
			return n
		}
		return e.workers
	}
	w := runtime.GOMAXPROCS(0)
	if max := n / shardedMinSegment; w > max {
		w = max
	}
	return w
}

// RunWith implements StatefulEngine.
//
//ring:coldpath -- per-run entry point; the worker loops below carry their own //ring:hotpath roots
func (e *ShardedEngine) RunWith(st *RunState, cfg Config, nodes []Node) (*Result, error) {
	if st == nil {
		st = NewRunState()
	}
	n := len(nodes)
	if cfg.RecordTrace || e.effectiveWorkers(n) < 2 {
		// Traces need one global delivery order; tiny rings are not worth the
		// worker launch. The serial loop under global FIFO is the reference
		// schedule the sharded result is defined against anyway.
		return runLoop(cfg, nodes, st.scheduler(e, NewFIFOScheduler), st)
	}
	cfg, err := cfg.normalize(n)
	if err != nil {
		return nil, err
	}
	if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
		return nil, canceledRun(cfg.Ctx)
	}
	if st.shardOwner != e || st.shard == nil {
		st.shard = &shardRun{}
		st.shardOwner = e
	}
	return st.shard.run(e, st, cfg, nodes)
}

// boundarySlots is the capacity of each boundary SPSC ring. Power of two;
// when a burst outruns it the producer spills to a local overflow queue that
// drains, in order, before any younger message, so per-link FIFO holds.
const boundarySlots = 256

// spscSlot is one message slot of a boundary ring. buf is owned by the slot
// and reused: the producer copies the payload in while the slot is free, the
// consumer copies it out into its local arena before advancing head.
type spscSlot struct {
	to    int32
	from  uint8
	nbits int32
	buf   []byte
}

// spscRing is a bounded single-producer single-consumer queue carrying the
// traffic of one boundary link. head and tail are absolute counters; the
// producer owns tail, the consumer owns head.
type spscRing struct {
	slots []spscSlot
	_     [64]byte     // keep head and tail on separate cache lines
	head  atomic.Int64 //ring:owner consumer
	_     [64]byte
	tail  atomic.Int64 //ring:owner producer
}

func (q *spscRing) init() {
	if q.slots == nil {
		q.slots = make([]spscSlot, boundarySlots)
	}
	q.head.Store(0) //ringvet:ignore shardsafe -- init runs before the worker goroutines exist
	q.tail.Store(0) //ringvet:ignore shardsafe -- init runs before the worker goroutines exist
}

// freeSlots reports how many pushes currently fit (producer side).
//
//ring:producer
func (q *spscRing) freeSlots() int {
	return len(q.slots) - int(q.tail.Load()-q.head.Load())
}

// push copies the payload into the next slot and publishes it. The caller
// must have checked freeSlots.
//
//ring:hotpath guard=TestShardedSteadyStateAllocFloor
//ring:producer
func (q *spscRing) push(to int, from Direction, payload bits.String) {
	t := q.tail.Load()
	s := &q.slots[t&int64(len(q.slots)-1)]
	raw := payload.Raw()
	if cap(s.buf) < len(raw) {
		s.buf = make([]byte, len(raw)+16)
	}
	s.buf = s.buf[:len(raw)]
	copy(s.buf, raw)
	s.to = int32(to)
	s.from = uint8(from)
	s.nbits = int32(payload.Len())
	q.tail.Store(t + 1)
}

// drainInto moves every published message into the consumer's local queue
// (which copies the payload into its arena) and returns how many it moved.
//
//ring:hotpath guard=TestShardedSteadyStateAllocFloor
//ring:consumer
func (q *spscRing) drainInto(local *fifoQueue) int {
	h := q.head.Load()
	t := q.tail.Load()
	moved := int(t - h)
	for ; h < t; h++ {
		s := &q.slots[h&int64(len(q.slots)-1)]
		local.push(int(s.to), Direction(s.from), bits.View(s.buf, int(s.nbits)))
		// The payload is copied into the local arena; only now may the
		// producer reuse the slot.
		q.head.Store(h + 1)
	}
	return moved
}

// shardBoundary is the producer side of one outgoing boundary link: the SPSC
// ring plus the overflow queue used when the ring is momentarily full.
type shardBoundary struct {
	ring  spscRing
	spill fifoQueue //ring:owner producer
}

// send hands one boundary message over, preserving per-link FIFO: the spill
// always drains before a younger message is pushed.
//
//ring:hotpath guard=TestShardedSteadyStateAllocFloor
//ring:producer
func (b *shardBoundary) send(to int, from Direction, payload bits.String) {
	b.flushSpill()
	if b.spill.len() == 0 && b.ring.freeSlots() > 0 {
		b.ring.push(to, from, payload)
		return
	}
	b.spill.push(to, from, payload)
}

// flushSpill moves as much of the overflow queue into the ring as fits.
//
//ring:hotpath guard=TestShardedSteadyStateAllocFloor
//ring:producer
func (b *shardBoundary) flushSpill() {
	for b.spill.len() > 0 && b.ring.freeSlots() > 0 {
		d := b.spill.pop()
		b.ring.push(d.To, d.From, d.Payload)
	}
}

// shardWorker is the per-segment state: the processor range [lo, hi], the
// local delivery queue, the two outgoing boundaries, and the worker's private
// slice of the run accounting (merged into the shared Stats after the join).
type shardWorker struct {
	lo, hi int
	local  fifoQueue
	toNext shardBoundary // messages to processor hi+1 (sent Forward from hi)
	toPrev shardBoundary // messages to processor lo-1 (sent Backward from lo)

	// Accounting accumulated without synchronization and merged by the
	// leader goroutine after the WaitGroup join.
	messages  int
	bitsTotal int
	maxBits   int
	delivered int
	err       error

	_ [64]byte // avoid false sharing between adjacent workers
}

// shardRun is the reusable state of sharded executions, cached inside a
// RunState the same way a scheduler is: backing arrays, boundary rings and
// spill arenas grown in one run are reused by the next.
type shardRun struct {
	workers []shardWorker

	cfg   Config
	n     int
	nodes []Node
	stats *Stats

	inflight  atomic.Int64
	delivered atomic.Int64

	// done is the run's stop flag: 0 running, 1 stopped. Whoever wins the CAS
	// owns the shutdown; the verdict and error fields are written before the
	// CAS and read after the WaitGroup join.
	done atomic.Int32

	// verdict is written only by the leader's worker (the only processor
	// allowed to decide) before done is published.
	verdict    Verdict
	hasVerdict bool

	ctxDone <-chan struct{}
}

var _ verdictSink = (*shardRun)(nil)

// decide implements verdictSink. Only the leader's context can reach it, so
// it runs on exactly one goroutine; publication to the other workers happens
// through the done flag.
//
//ring:hotpath guard=TestShardedSteadyStateAllocFloor
func (r *shardRun) decide(proc int, v Verdict) error {
	if r.hasVerdict {
		return ErrAlreadyDecided
	}
	r.verdict = v
	r.hasVerdict = true
	r.done.CompareAndSwap(0, 1)
	return nil
}

// stop requests shutdown without a verdict (quiescence, error, cancellation).
func (r *shardRun) stop() { r.done.CompareAndSwap(0, 1) }

func (r *shardRun) stopped() bool { return r.done.Load() != 0 }

// segmentBounds returns worker w's processor range for n processors split
// into wn contiguous segments (the first n%wn segments get the extra
// processor).
func segmentBounds(w, wn, n int) (lo, hi int) {
	base, rem := n/wn, n%wn
	lo = w*base + min(w, rem)
	size := base
	if w < rem {
		size++
	}
	return lo, lo + size - 1
}

// workerOf returns the worker index owning processor i.
func workerOf(i, wn, n int) int {
	base, rem := n/wn, n%wn
	cut := (base + 1) * rem
	if i < cut {
		return i / (base + 1)
	}
	return rem + (i-cut)/base
}

// reset prepares the cached run structures for a fresh execution with wn
// workers.
func (r *shardRun) reset(cfg Config, nodes []Node, stats *Stats, wn int) {
	r.cfg = cfg
	r.n = len(nodes)
	r.nodes = nodes
	r.stats = stats
	r.inflight.Store(0)
	r.delivered.Store(0)
	r.done.Store(0)
	r.verdict = VerdictNone
	r.hasVerdict = false
	r.ctxDone = nil
	if cfg.Ctx != nil {
		r.ctxDone = cfg.Ctx.Done()
	}
	if len(r.workers) != wn {
		r.workers = make([]shardWorker, wn)
	}
	for w := range r.workers {
		wk := &r.workers[w]
		wk.lo, wk.hi = segmentBounds(w, wn, r.n)
		wk.local.reset()
		wk.toNext.ring.init()
		wk.toNext.spill.reset() //ringvet:ignore shardsafe -- reset runs before the worker goroutines launch
		wk.toPrev.ring.init()
		wk.toPrev.spill.reset() //ringvet:ignore shardsafe -- reset runs before the worker goroutines launch
		wk.messages, wk.bitsTotal, wk.maxBits = 0, 0, 0
		wk.delivered = 0
		wk.err = nil
	}
}

// recordSend accounts one send in the worker's private totals and the shared
// per-link arrays (one writer per link; see Stats).
//
//ring:hotpath guard=TestShardedSteadyStateAllocFloor
func (wk *shardWorker) recordSend(r *shardRun, to int, arrival Direction, payload bits.String) {
	nb := payload.Len()
	wk.messages++
	wk.bitsTotal += nb
	if nb > wk.maxBits {
		wk.maxBits = nb
	}
	link := linkIndex(to, arrival)
	r.stats.linkMsgs[link]++
	r.stats.linkBits[link] += int64(nb)
}

// dispatch routes, accounts and enqueues the sends of processor fromProc.
// It runs on the worker owning fromProc; cross-segment sends can only cross
// the worker's own two boundaries, because a ring send travels exactly one
// hop.
//
//ring:hotpath guard=TestShardedSteadyStateAllocFloor
func (wk *shardWorker) dispatch(r *shardRun, fromProc int, sends []Send) error {
	for _, s := range sends {
		to, arrival, err := routeSend(r.cfg, fromProc, s, r.n)
		if err != nil {
			return err
		}
		wk.recordSend(r, to, arrival, s.Payload)
		r.inflight.Add(1)
		if to >= wk.lo && to <= wk.hi {
			wk.local.push(to, arrival, s.Payload)
		} else if s.Dir == Forward {
			wk.toNext.send(to, arrival, s.Payload)
		} else {
			wk.toPrev.send(to, arrival, s.Payload)
		}
	}
	return nil
}

// budgetBatch is how many deliveries a worker processes between flushes of
// its private delivery count into the shared budget counter. The budget
// check can therefore overshoot MaxMessages by at most budgetBatch per
// worker — it is a runaway guard, not an exact meter, and the serial loop
// remains the reference for exact budget semantics.
const budgetBatch = 16

// loop is one worker's event loop. w is the worker's own index; its incoming
// rings are owned by the two neighbouring workers.
//
//ring:hotpath guard=TestShardedSteadyStateAllocFloor
func (wk *shardWorker) loop(r *shardRun, w int, contexts []Context) {
	wn := len(r.workers)
	inPrev := &r.workers[(w-1+wn)%wn].toNext.ring
	inNext := &r.workers[(w+1)%wn].toPrev.ring
	idle := 0
	sinceBatch := 0
	for {
		if r.stopped() {
			return
		}
		moved := inPrev.drainInto(&wk.local) + inNext.drainInto(&wk.local)
		wk.toNext.flushSpill()
		wk.toPrev.flushSpill()
		if wk.local.len() == 0 {
			if moved == 0 {
				if r.inflight.Load() == 0 {
					r.stop()
					return
				}
				if r.ctxDone != nil {
					select {
					case <-r.ctxDone:
						wk.err = canceledRun(r.cfg.Ctx)
						r.stop()
						return
					default:
					}
				}
				idle++
				if idle > 1024 {
					time.Sleep(10 * time.Microsecond)
				} else {
					runtime.Gosched()
				}
			}
			continue
		}
		idle = 0
		d := wk.local.pop()
		wk.delivered++
		sinceBatch++
		if sinceBatch == budgetBatch {
			sinceBatch = 0
			if r.delivered.Add(budgetBatch) > int64(r.cfg.MaxMessages) {
				//ringvet:ignore hotpathalloc -- error construction ends the run; never on the steady-state path
				wk.err = fmt.Errorf("%w: %d messages", ErrMessageBudgetExceeded, r.cfg.MaxMessages)
				r.stop()
				return
			}
			if r.ctxDone != nil {
				select {
				case <-r.ctxDone:
					wk.err = canceledRun(r.cfg.Ctx)
					r.stop()
					return
				default:
				}
			}
		}
		sends, err := r.nodes[d.To].Receive(&contexts[d.To], d.From, d.Payload)
		if err != nil {
			//ringvet:ignore hotpathalloc -- error construction ends the run; never on the steady-state path
			wk.err = fmt.Errorf("ring: receive at processor %d: %w", d.To, err)
			r.stop()
			return
		}
		if !r.stopped() {
			// Mirrors the serial loop and the concurrent engine: once a
			// verdict (or failure) landed, response sends are dropped.
			if err := wk.dispatch(r, d.To, sends); err != nil {
				wk.err = err
				r.stop()
				return
			}
		}
		if r.inflight.Add(-1) == 0 {
			r.stop()
			return
		}
	}
}

// run executes one sharded run inside st. The workers race to a legal
// interleaving, but everything in the returned Result is an order-independent
// aggregate, so the run is deterministic in the sense the engine documents.
//
//ring:deterministic
func (r *shardRun) run(e *ShardedEngine, st *RunState, cfg Config, nodes []Node) (*Result, error) {
	n := len(nodes)
	wn := e.effectiveWorkers(n)
	lp := &st.loop
	lp.reset(cfg, n)
	lp.stats.ensureLinks() // workers write the link arrays; allocate before they race
	r.reset(cfg, nodes, &lp.stats, wn)

	contexts := st.resetContexts(n)
	for i := range contexts {
		contexts[i].isLeader = i == LeaderIndex
		contexts[i].proc = i
		contexts[i].sink = r
	}

	// Start phase: serial, before any worker exists, so it can push straight
	// into the owning workers' local queues with no synchronization. This is
	// the same legal prefix the serial loop uses.
	for i := 0; i < n; i++ {
		if cfg.Initiators == LeaderOnly && i != LeaderIndex {
			continue
		}
		//ringvet:ignore allocflow -- Start runs once per node at run begin, before the delivery loop
		sends, err := nodes[i].Start(&contexts[i])
		if err != nil {
			return nil, fmt.Errorf("ring: start of processor %d: %w", i, err)
		}
		// Route each start send directly into the receiver's owning worker.
		for _, s := range sends {
			to, arrival, err := routeSend(cfg, i, s, n)
			if err != nil {
				return nil, err
			}
			wk := &r.workers[workerOf(i, wn, n)]
			wk.recordSend(r, to, arrival, s.Payload)
			r.inflight.Add(1)
			r.workers[workerOf(to, wn, n)].local.push(to, arrival, s.Payload)
		}
		if r.hasVerdict {
			break
		}
	}

	if !r.hasVerdict && r.inflight.Load() > 0 {
		var wg sync.WaitGroup
		for w := range r.workers {
			wk := &r.workers[w]
			wg.Add(1)
			//ring:ordered -- workers race to a legal asynchronous schedule; Result/Stats are order-independent aggregates (see ShardedEngine)
			go func(w int) {
				defer wg.Done()
				wk.loop(r, w, contexts)
			}(w)
		}
		wg.Wait()
	}

	// Merge the workers' private totals into the shared Stats.
	for w := range r.workers {
		wk := &r.workers[w]
		lp.stats.Messages += wk.messages
		lp.stats.Bits += wk.bitsTotal
		if wk.maxBits > lp.stats.MaxMessageBits {
			lp.stats.MaxMessageBits = wk.maxBits
		}
	}
	for w := range r.workers {
		if err := r.workers[w].err; err != nil {
			return nil, err
		}
	}
	if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
		return nil, canceledRun(cfg.Ctx)
	}
	verdict := VerdictNone
	if r.hasVerdict {
		verdict = r.verdict
	}
	lp.verdict = verdict
	if cfg.RequireVerdict && verdict == VerdictNone {
		return nil, ErrNoVerdict
	}
	return &Result{Verdict: verdict, Stats: &lp.stats}, nil
}
