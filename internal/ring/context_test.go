package ring

import (
	"context"
	"errors"
	"testing"
	"time"

	"ringlang/internal/bits"
)

// spinNode circulates a token forever: the leader starts it and forwards it
// like everyone else, so the execution only ends through the message budget —
// or through cancellation, which is what these tests exercise.
type spinNode struct {
	leader bool
}

func (s *spinNode) Start(ctx *Context) ([]Send, error) {
	if !s.leader {
		return nil, nil
	}
	w := ctx.Writer()
	w.WriteBool(true)
	return ctx.Reply(Forward, w.BitString()), nil
}

func (s *spinNode) Receive(ctx *Context, from Direction, payload bits.String) ([]Send, error) {
	return ctx.Reply(Forward, payload), nil
}

func spinNodes(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &spinNode{leader: i == LeaderIndex}
	}
	return nodes
}

// cancelAfterNode forwards the token like spinNode but fires cancel once it
// has seen `after` deliveries, so the loop's amortized context check is
// exercised mid-run from inside the execution itself.
type cancelAfterNode struct {
	spinNode
	after  int
	seen   int
	cancel context.CancelFunc
}

func (c *cancelAfterNode) Receive(ctx *Context, from Direction, payload bits.String) ([]Send, error) {
	c.seen++
	if c.seen == c.after {
		c.cancel()
	}
	return c.spinNode.Receive(ctx, from, payload)
}

// requireCanceled asserts the error wraps both ErrCanceled and the context
// package's sentinel, the contract of every cancellation path.
func requireCanceled(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("expected a cancellation error, got nil")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("error does not wrap ErrCanceled: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not wrap context.Canceled: %v", err)
	}
}

// TestLoopPreCanceledContext pins the fast path: a context canceled before
// the run starts fails every scheduler-backed engine without delivering a
// single message.
func TestLoopPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, eng := range []Engine{
		NewSequentialEngine(),
		NewRandomOrderEngine(3),
		NewRoundRobinEngine(),
		NewAdversarialEngine(0),
		NewConcurrentEngine(),
	} {
		_, err := eng.Run(Config{RequireVerdict: true, Ctx: ctx}, tokenNodes(8))
		requireCanceled(t, err)
	}
}

// TestLoopCancelMidRun cancels the context from inside a delivery and checks
// the loop aborts within one amortized check interval instead of running to
// the message budget.
func TestLoopCancelMidRun(t *testing.T) {
	const n = 64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	nodes := spinNodes(n)
	nodes[1] = &cancelAfterNode{after: 5, cancel: cancel}
	cfg := Config{Ctx: ctx, MaxMessages: 1 << 20}
	res, err := NewSequentialEngine().Run(cfg, nodes)
	requireCanceled(t, err)
	if res != nil {
		t.Errorf("canceled run returned a result: %+v", res)
	}
	// The cancel lands at delivery ~5+n; the loop must notice at the next
	// 256-delivery boundary, far below the 2^20 budget.
	_, err = NewSequentialEngine().Run(Config{Ctx: context.Background(), MaxMessages: 4 * ctxCheckInterval}, spinNodes(4))
	if !errors.Is(err, ErrMessageBudgetExceeded) {
		t.Fatalf("control run should exhaust the budget, got %v", err)
	}
}

// TestLoopCancelWithReusedState checks the stateful path: cancellation on a
// RunState leaves it reusable, and the next run on it succeeds.
func TestLoopCancelWithReusedState(t *testing.T) {
	eng := NewSequentialEngine()
	st := NewRunState()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.RunWith(st, Config{RequireVerdict: true, Ctx: ctx}, tokenNodes(16)); err == nil {
		t.Fatal("pre-canceled RunWith did not fail")
	}
	res, err := eng.RunWith(st, Config{RequireVerdict: true, Ctx: context.Background()}, tokenNodes(16))
	if err != nil {
		t.Fatalf("reused state after cancel: %v", err)
	}
	if res.Verdict != VerdictAccept {
		t.Errorf("verdict = %v after reuse", res.Verdict)
	}
}

// TestConcurrentEngineCancelMidRun starts an endless circulation on the
// goroutine-per-processor engine and cancels it from outside; the watcher
// must shut the run down promptly with ErrCanceled and every goroutine must
// drain (the engine joins processors and pumps before returning).
func TestConcurrentEngineCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := NewConcurrentEngine().Run(Config{Ctx: ctx, MaxMessages: 1 << 30}, spinNodes(8))
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		requireCanceled(t, err)
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent engine did not shut down after cancel")
	}
}

// TestLoopNilContextUnchanged pins that runs without a context behave exactly
// as before the context plumbing: same verdict, same accounting.
func TestLoopNilContextUnchanged(t *testing.T) {
	res, err := NewSequentialEngine().Run(Config{RequireVerdict: true}, tokenNodes(32))
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictAccept || res.Stats.Bits != 32 || res.Stats.Messages != 32 {
		t.Errorf("token ring accounting changed: %+v", res.Stats)
	}
}
