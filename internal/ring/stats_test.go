package ring

import (
	"testing"

	"ringlang/internal/bits"
)

func oneBit() bits.String {
	var w bits.Writer
	w.WriteBool(true)
	return w.String()
}

// TestMinLinkBitsDeterministicTieBreak pins the Theorem 5 cut-link choice: on
// a symmetric-traffic ring every link carries the same number of bits, and
// the seed implementation picked the winner by map iteration order — a
// different link on identical runs. The tie must deterministically go to the
// lowest (From, To).
func TestMinLinkBitsDeterministicTieBreak(t *testing.T) {
	const n = 8
	for i := 0; i < 100; i++ {
		res, err := NewSequentialEngine().Run(Config{RequireVerdict: true}, tokenNodes(n))
		if err != nil {
			t.Fatal(err)
		}
		min, ok := res.Stats.MinLinkBits()
		if !ok {
			t.Fatal("no link carried traffic")
		}
		if min.From != 0 || min.To != 1 {
			t.Fatalf("iteration %d: MinLinkBits chose link (%d,%d); the deterministic tie-break is (0,1)",
				i, min.From, min.To)
		}
	}
}

// TestMinLinkBitsPrefersFewerBits checks the tie-break only applies to actual
// ties: a strictly cheaper link wins regardless of its position.
func TestMinLinkBitsPrefersFewerBits(t *testing.T) {
	s := newStats(4)
	payload := oneBit()
	// Links (0→1) and (1→2) carry two messages, (2→3) carries one.
	s.record(1, Backward, payload)
	s.record(1, Backward, payload)
	s.record(2, Backward, payload)
	s.record(2, Backward, payload)
	s.record(3, Backward, payload)
	min, ok := s.MinLinkBits()
	if !ok || min.From != 2 || min.To != 3 || min.Bits != 1 {
		t.Fatalf("MinLinkBits = %+v/%v, want link (2,3) with 1 bit", min, ok)
	}
}

// TestStatsResetReuse checks that a reused Stats starts every run from a
// clean slate while keeping its backing array.
func TestStatsResetReuse(t *testing.T) {
	s := newStats(4)
	payload := oneBit()
	s.record(1, Backward, payload)
	s.record(0, Backward, payload)
	if s.Messages != 2 || s.Bits != 2 {
		t.Fatalf("unexpected totals %d/%d", s.Messages, s.Bits)
	}
	snapshot := s.Clone()

	s.reset(4)
	if s.Messages != 0 || s.Bits != 0 || s.MaxMessageBits != 0 {
		t.Fatalf("reset left totals %d/%d/%d", s.Messages, s.Bits, s.MaxMessageBits)
	}
	if len(s.PerLink()) != 0 {
		t.Fatalf("reset left %d per-link entries", len(s.PerLink()))
	}
	if _, ok := s.MinLinkBits(); ok {
		t.Fatal("reset Stats still reports a min link")
	}

	// The clone must be unaffected by the reset.
	if snapshot.Messages != 2 || snapshot.Bits != 2 {
		t.Fatalf("clone mutated by reset: %+v", snapshot)
	}
	if ls, ok := snapshot.PerLink()[[2]int{0, 1}]; !ok || ls.Messages != 1 {
		t.Fatalf("clone lost per-link entry: %+v/%v", ls, ok)
	}

	// Growing the ring reallocates; shrinking reuses.
	s.reset(2)
	s.record(1, Backward, payload)
	if ls, ok := s.PerLink()[[2]int{0, 1}]; !ok || ls.Bits != 1 {
		t.Fatalf("reuse after shrink broken: %+v/%v", ls, ok)
	}
}

// TestPerLinkMergesSharedKeys covers the n=2 bidirectional edge: the forward
// and backward links between the same processor pair share a (From, To) key
// and the map view must merge them like the seed map did.
func TestPerLinkMergesSharedKeys(t *testing.T) {
	s := newStats(2)
	payload := oneBit()
	// 0→1 travelling forward (arrives from the receiver's backward side) and
	// 0→1 travelling backward (arrives from the receiver's forward side).
	s.record(1, Backward, payload)
	s.record(1, Forward, payload)
	view := s.PerLink()
	if len(view) != 1 {
		t.Fatalf("expected 1 merged entry, got %d", len(view))
	}
	ls := view[[2]int{0, 1}]
	if ls == nil || ls.Messages != 2 || ls.Bits != 2 {
		t.Fatalf("merged entry = %+v, want 2 messages / 2 bits", ls)
	}
	// Links() and MinLinkBits see the same merged accounting, so the cut
	// quantity of a degenerate ring matches the seed map's.
	if links := s.Links(); len(links) != 1 || links[0].Bits != 2 {
		t.Fatalf("Links() = %v, want one merged link with 2 bits", links)
	}
	if min, ok := s.MinLinkBits(); !ok || min.Bits != 2 {
		t.Fatalf("MinLinkBits = %+v/%v, want the merged 2-bit link", min, ok)
	}
}
