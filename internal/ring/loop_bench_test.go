package ring

// Benchmarks for the shared event loop, plus replicas of the pre-refactor
// engine loops (`queue = queue[1:]` slice pops and map-keyed link queues) so
// the allocation savings of the ring-buffer deque and the dense per-link
// arrays stay measurable — and enforced by TestLoopAllocatesLessThanSeedLoop
// — after the originals are gone.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"ringlang/internal/bits"
)

// funcSink adapts a closure to verdictSink for the seed-replica loops, which
// predate the shared sink plumbing.
type funcSink func(proc int, v Verdict) error

func (f funcSink) decide(proc int, v Verdict) error { return f(proc, v) }

// seedSequentialRun replicates the seed SequentialEngine.Run delivery loop:
// a single []pendingDelivery advanced with queue = queue[1:].
func seedSequentialRun(cfg Config, nodes []Node) (*Result, error) {
	cfg, err := cfg.normalize(len(nodes))
	if err != nil {
		return nil, err
	}
	n := len(nodes)
	stats := newStats(n)
	var trace Trace
	seq := 0
	addEvent := func(ev Event) {
		if !cfg.RecordTrace {
			return
		}
		ev.Seq = seq
		trace = append(trace, ev)
	}

	verdict := VerdictNone
	contexts := make([]*Context, n)
	for i := range contexts {
		contexts[i] = &Context{
			isLeader: i == LeaderIndex,
			proc:     i,
			sink: funcSink(func(proc int, v Verdict) error {
				if verdict != VerdictNone {
					return ErrAlreadyDecided
				}
				verdict = v
				addEvent(Event{Kind: EventVerdict, Processor: proc, Verdict: v})
				seq++
				return nil
			}),
		}
	}

	type pendingDelivery struct {
		to      int
		from    Direction
		payload bits.String
	}
	var queue []pendingDelivery
	dispatch := func(fromProc int, sends []Send) error {
		for _, s := range sends {
			to, arrival, err := routeSend(cfg, fromProc, s, n)
			if err != nil {
				return err
			}
			stats.record(to, arrival, s.Payload)
			addEvent(Event{Kind: EventSend, Processor: fromProc, Dir: s.Dir, Payload: s.Payload})
			seq++
			queue = append(queue, pendingDelivery{to: to, from: arrival, payload: s.Payload})
		}
		return nil
	}

	for i := 0; i < n; i++ {
		if cfg.Initiators == LeaderOnly && i != LeaderIndex {
			continue
		}
		addEvent(Event{Kind: EventStart, Processor: i})
		seq++
		sends, err := nodes[i].Start(contexts[i])
		if err != nil {
			return nil, err
		}
		if err := dispatch(i, sends); err != nil {
			return nil, err
		}
		if verdict != VerdictNone {
			break
		}
	}

	delivered := 0
	for len(queue) > 0 && verdict == VerdictNone {
		if delivered >= cfg.MaxMessages {
			return nil, fmt.Errorf("%w: %d messages", ErrMessageBudgetExceeded, delivered)
		}
		d := queue[0]
		queue = queue[1:]
		delivered++
		addEvent(Event{Kind: EventReceive, Processor: d.to, Dir: d.from, Payload: d.payload})
		seq++
		sends, err := nodes[d.to].Receive(contexts[d.to], d.from, d.payload)
		if err != nil {
			return nil, err
		}
		if verdict != VerdictNone {
			break
		}
		if err := dispatch(d.to, sends); err != nil {
			return nil, err
		}
	}

	if cfg.RequireVerdict && verdict == VerdictNone {
		return nil, ErrNoVerdict
	}
	return &Result{Verdict: verdict, Stats: stats, Trace: trace}, nil
}

// seedRandomOrderRun replicates the seed RandomOrderEngine.Run delivery loop:
// per-link FIFO queues keyed by a struct in a map.
func seedRandomOrderRun(cfg Config, nodes []Node, seedVal int64) (*Result, error) {
	cfg, err := cfg.normalize(len(nodes))
	if err != nil {
		return nil, err
	}
	n := len(nodes)
	rng := rand.New(rand.NewSource(seedVal))
	stats := newStats(n)
	verdict := VerdictNone
	contexts := make([]*Context, n)
	for i := range contexts {
		contexts[i] = &Context{
			isLeader: i == LeaderIndex,
			proc:     i,
			sink: funcSink(func(proc int, v Verdict) error {
				if verdict != VerdictNone {
					return ErrAlreadyDecided
				}
				verdict = v
				return nil
			}),
		}
	}

	type linkKey struct {
		to   int
		from Direction
	}
	queues := make(map[linkKey][]bits.String)
	var nonEmpty []linkKey
	dispatch := func(fromProc int, sends []Send) error {
		for _, s := range sends {
			to, arrival, err := routeSend(cfg, fromProc, s, n)
			if err != nil {
				return err
			}
			stats.record(to, arrival, s.Payload)
			key := linkKey{to: to, from: arrival}
			q := queues[key]
			if len(q) == 0 {
				nonEmpty = append(nonEmpty, key)
			}
			queues[key] = append(q, s.Payload)
		}
		return nil
	}

	for i := 0; i < n; i++ {
		if cfg.Initiators == LeaderOnly && i != LeaderIndex {
			continue
		}
		sends, err := nodes[i].Start(contexts[i])
		if err != nil {
			return nil, err
		}
		if err := dispatch(i, sends); err != nil {
			return nil, err
		}
		if verdict != VerdictNone {
			break
		}
	}

	delivered := 0
	for len(nonEmpty) > 0 && verdict == VerdictNone {
		if delivered >= cfg.MaxMessages {
			return nil, fmt.Errorf("%w: %d messages", ErrMessageBudgetExceeded, delivered)
		}
		idx := rng.Intn(len(nonEmpty))
		key := nonEmpty[idx]
		q := queues[key]
		payload := q[0]
		q = q[1:]
		queues[key] = q
		if len(q) == 0 {
			nonEmpty[idx] = nonEmpty[len(nonEmpty)-1]
			nonEmpty = nonEmpty[:len(nonEmpty)-1]
		}
		delivered++
		sends, err := nodes[key.to].Receive(contexts[key.to], key.from, payload)
		if err != nil {
			return nil, err
		}
		if verdict != VerdictNone {
			break
		}
		if err := dispatch(key.to, sends); err != nil {
			return nil, err
		}
	}

	if cfg.RequireVerdict && verdict == VerdictNone {
		return nil, ErrNoVerdict
	}
	return &Result{Verdict: verdict, Stats: stats, Trace: nil}, nil
}

func benchRun(b *testing.B, run func() (*Result, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Verdict != VerdictAccept {
			b.Fatalf("unexpected verdict %v", res.Verdict)
		}
	}
}

// BenchmarkEngine exercises every scheduler-backed engine (plus the seed
// replicas as baselines) on the one-bit token ring: n deliveries per run,
// trace recording on and off.
func BenchmarkEngine(b *testing.B) {
	for _, n := range []int{64, 512, 4096} {
		nodes := tokenNodes(n)
		for _, withTrace := range []bool{false, true} {
			cfg := Config{RequireVerdict: true, RecordTrace: withTrace}
			suffix := fmt.Sprintf("/n=%d/trace=%v", n, withTrace)
			b.Run("seq-seed"+suffix, func(b *testing.B) {
				benchRun(b, func() (*Result, error) { return seedSequentialRun(cfg, nodes) })
			})
			b.Run("sequential"+suffix, func(b *testing.B) {
				eng := NewSequentialEngine()
				benchRun(b, func() (*Result, error) { return eng.Run(cfg, nodes) })
			})
			if !withTrace {
				b.Run("random-seed"+suffix, func(b *testing.B) {
					benchRun(b, func() (*Result, error) { return seedRandomOrderRun(cfg, nodes, 11) })
				})
			}
			b.Run("random"+suffix, func(b *testing.B) {
				eng := NewRandomOrderEngine(11)
				benchRun(b, func() (*Result, error) { return eng.Run(cfg, nodes) })
			})
			b.Run("round-robin"+suffix, func(b *testing.B) {
				eng := NewRoundRobinEngine()
				benchRun(b, func() (*Result, error) { return eng.Run(cfg, nodes) })
			})
			b.Run("adversarial"+suffix, func(b *testing.B) {
				eng := NewAdversarialEngine(DefaultAdversarialBound)
				benchRun(b, func() (*Result, error) { return eng.Run(cfg, nodes) })
			})
		}
	}
}

// BenchmarkEngineSteadyState measures the reusable-state hot path: RunWith on
// one RunState, the configuration batch workers run in. With the zero-copy
// payload path (Context.Writer + Reply + bits.Writer.BitString) a steady-state
// token circulation performs no per-message allocation at all; the remaining
// allocs/op is the Result value.
func BenchmarkEngineSteadyState(b *testing.B) {
	for _, n := range []int{64, 512, 4096} {
		nodes := tokenNodes(n)
		cfg := Config{RequireVerdict: true}
		b.Run(fmt.Sprintf("sequential/n=%d", n), func(b *testing.B) {
			eng := NewSequentialEngine()
			st := NewRunState()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := eng.RunWith(st, cfg, nodes)
				if err != nil {
					b.Fatal(err)
				}
				if res.Verdict != VerdictAccept {
					b.Fatalf("unexpected verdict %v", res.Verdict)
				}
			}
		})
	}
}

// Recorded allocation floors for the engine loop on the n=4096 one-bit token
// ring. The measured values at the time of recording were 1 (steady state:
// the Result) and 8 (full Run: run state, scheduler, stats, writer); the
// ceilings below leave minimal headroom so a regression on the payload path
// — a copy, a per-message slice, a per-send writer — fails the suite rather
// than silently landing. The pre-zero-copy loop (PR 2) measured 4104.
const (
	allocCeilingSteadyStateN4096 = 2
	allocCeilingFullRunN4096     = 12
	allocSeedBaselineN4096       = 4104
)

// TestEngineLoopAllocRegressionGuard is the alloc-regression gate CI runs: the
// engine loop at n=4096 must stay at (or below) the recorded floors, and in
// particular strictly below the 4104 allocs/run the loop performed before the
// zero-copy payload path. The same ceilings are enforced with a live
// cancelable context installed (Config.Ctx with a real Done channel), so the
// amortized cancellation checks can never reintroduce per-run allocations.
func TestEngineLoopAllocRegressionGuard(t *testing.T) {
	n := 4096
	nodes := tokenNodes(n)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if ctx.Done() == nil {
		t.Fatal("test context has no Done channel; the ctx-aware variant would not exercise the polls")
	}
	eng := NewSequentialEngine()
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"no-ctx", Config{RequireVerdict: true}},
		{"ctx", Config{RequireVerdict: true, Ctx: ctx}},
	} {
		st := NewRunState()
		if _, err := eng.RunWith(st, tc.cfg, nodes); err != nil {
			t.Fatal(err)
		}
		steady := testing.AllocsPerRun(10, func() {
			if _, err := eng.RunWith(st, tc.cfg, nodes); err != nil {
				t.Fatal(err)
			}
		})
		full := testing.AllocsPerRun(10, func() {
			if _, err := eng.Run(tc.cfg, nodes); err != nil {
				t.Fatal(err)
			}
		})
		t.Logf("%s allocs/run at n=%d: steady-state=%.0f (ceiling %d), full Run=%.0f (ceiling %d)",
			tc.name, n, steady, allocCeilingSteadyStateN4096, full, allocCeilingFullRunN4096)
		if steady > allocCeilingSteadyStateN4096 {
			t.Errorf("%s: steady-state loop allocates %.0f/run, recorded ceiling is %d", tc.name, steady, allocCeilingSteadyStateN4096)
		}
		if full > allocCeilingFullRunN4096 {
			t.Errorf("%s: full Run allocates %.0f/run, recorded ceiling is %d", tc.name, full, allocCeilingFullRunN4096)
		}
		if full >= allocSeedBaselineN4096 {
			t.Errorf("%s: full Run allocates %.0f/run, not below the pre-refactor %d baseline", tc.name, full, allocSeedBaselineN4096)
		}
	}
}

// TestLoopAllocatesLessThanSeedLoop pins the point of the deque refactor: at
// n=4096 the shared loop must allocate strictly less than the seed
// `queue[1:]` implementation it replaced.
func TestLoopAllocatesLessThanSeedLoop(t *testing.T) {
	n := 4096
	nodes := tokenNodes(n)
	cfg := Config{RequireVerdict: true}
	run := func(f func() (*Result, error)) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, err := f(); err != nil {
				t.Fatal(err)
			}
		})
	}
	seedAllocs := run(func() (*Result, error) { return seedSequentialRun(cfg, nodes) })
	loopAllocs := run(func() (*Result, error) { return NewSequentialEngine().Run(cfg, nodes) })
	if loopAllocs >= seedAllocs {
		t.Errorf("shared loop allocates %.0f/run, seed loop %.0f/run — the deque should win", loopAllocs, seedAllocs)
	}
	t.Logf("allocs/run at n=%d: seed=%.0f loop=%.0f", n, seedAllocs, loopAllocs)

	seedRandom := run(func() (*Result, error) { return seedRandomOrderRun(cfg, nodes, 5) })
	loopRandom := run(func() (*Result, error) { return NewRandomOrderEngine(5).Run(cfg, nodes) })
	if loopRandom >= seedRandom {
		t.Errorf("random scheduler allocates %.0f/run, seed map version %.0f/run", loopRandom, seedRandom)
	}
	t.Logf("random allocs/run at n=%d: seed=%.0f loop=%.0f", n, seedRandom, loopRandom)
}
