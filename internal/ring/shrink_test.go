package ring

import "testing"

// TestShouldShrinkPolicy pins the retention decision itself: release only
// after shrinkAfterRuns consecutive oversized runs, never for small or
// rightly-sized arrays, and a single adequately-sized run resets the streak.
func TestShouldShrinkPolicy(t *testing.T) {
	runs := 0
	// Small arrays are never released, however oversized.
	if shouldShrink(shrinkMinCap-1, 1, &runs) {
		t.Error("released an array below shrinkMinCap")
	}
	// Capacity in proportion to need is kept.
	if shouldShrink(4096, 4096/shrinkFactor+1, &runs) || runs != 0 {
		t.Error("released (or counted) an array within the retention ratio")
	}
	// An oversized array is released only on the shrinkAfterRuns-th
	// consecutive oversized run.
	for i := 1; i < shrinkAfterRuns; i++ {
		if shouldShrink(4096, 8, &runs) {
			t.Fatalf("released after %d oversized runs, want %d", i, shrinkAfterRuns)
		}
	}
	if !shouldShrink(4096, 8, &runs) {
		t.Fatalf("not released after %d consecutive oversized runs", shrinkAfterRuns)
	}
	if runs != 0 {
		t.Error("release should reset the streak counter")
	}
	// One adequately-sized run in between resets the streak.
	for i := 0; i < shrinkAfterRuns-1; i++ {
		shouldShrink(4096, 8, &runs)
	}
	shouldShrink(4096, 4096, &runs) // rightly-sized run
	if runs != 0 {
		t.Error("a rightly-sized run should reset the streak")
	}
}

func floodNodes(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &floodOnceNode{}
	}
	return nodes
}

// TestRunStateReleasesHighWaterCapacity is the memory-retention pin of the
// large-ring work: one huge run grows every backing array of a RunState (the
// flood pattern keeps n messages in flight, so the FIFO queue and its arena
// grow with n, as do contexts, writers and the per-link stats arrays); a
// long sequence of small runs must then release that high-water capacity
// instead of pinning it forever.
func TestRunStateReleasesHighWaterCapacity(t *testing.T) {
	const big = 1 << 15
	const small = 8
	eng := NewSequentialEngine()
	st := NewRunState()
	cfg := Config{Initiators: AllProcessors}

	if _, err := eng.RunWith(st, cfg, floodNodes(big)); err != nil {
		t.Fatal(err)
	}
	fs, ok := st.sched.(*fifoScheduler)
	if !ok {
		t.Fatalf("cached scheduler is %T, want *fifoScheduler", st.sched)
	}
	if fs.q.retainedSlots() < big {
		t.Fatalf("big run retained only %d slots; the flood should have grown the queue to ≥%d",
			fs.q.retainedSlots(), big)
	}
	if cap(st.contexts) < big || cap(st.loop.stats.linkMsgs) < numLinks(big) {
		t.Fatal("big run did not grow contexts / per-link stats as expected")
	}

	// One more than 2×shrinkAfterRuns small runs: the first small reset still
	// sees the big run's peak, and the queue and stats counters advance on
	// different resets — this comfortably covers every streak.
	for i := 0; i < 2*shrinkAfterRuns+1; i++ {
		if _, err := eng.RunWith(st, cfg, floodNodes(small)); err != nil {
			t.Fatal(err)
		}
	}

	if got := fs.q.retainedSlots(); got > shrinkMinCap {
		t.Errorf("FIFO queue retains %d slots after the small-run streak, want ≤%d", got, shrinkMinCap)
	}
	if got := fs.q.retainedArenaBytes(); got > shrinkMinCap {
		t.Errorf("payload arena retains %d bytes after the small-run streak, want ≤%d", got, shrinkMinCap)
	}
	if got := cap(st.contexts); got > shrinkMinCap {
		t.Errorf("contexts retain capacity %d after the small-run streak, want ≤%d", got, shrinkMinCap)
	}
	if got := cap(st.loop.stats.linkMsgs); got > shrinkMinCap {
		t.Errorf("per-link stats retain capacity %d after the small-run streak, want ≤%d", got, shrinkMinCap)
	}
}

// TestLinkQueuesReleaseHighWaterCapacity covers the pooled per-link queues
// the non-FIFO schedulers use: both the flat head/tail arrays (sized by link
// count) and the entry pool (sized by peak in-flight messages) must shrink
// back after a streak of small runs.
func TestLinkQueuesReleaseHighWaterCapacity(t *testing.T) {
	const big = 1 << 14
	const small = 8
	eng := NewRoundRobinEngine()
	st := NewRunState()
	cfg := Config{Initiators: AllProcessors}

	if _, err := eng.RunWith(st, cfg, floodNodes(big)); err != nil {
		t.Fatal(err)
	}
	rr, ok := st.sched.(*roundRobinScheduler)
	if !ok {
		t.Fatalf("cached scheduler is %T, want *roundRobinScheduler", st.sched)
	}
	if rr.links.retainedLinks() < numLinks(big) || rr.links.retainedEntries() < big {
		t.Fatalf("big run retained %d links / %d entries, want ≥%d/≥%d",
			rr.links.retainedLinks(), rr.links.retainedEntries(), numLinks(big), big)
	}

	for i := 0; i < 2*shrinkAfterRuns+1; i++ {
		if _, err := eng.RunWith(st, cfg, floodNodes(small)); err != nil {
			t.Fatal(err)
		}
	}

	if got := rr.links.retainedLinks(); got > shrinkMinCap {
		t.Errorf("link queues retain %d head/tail slots, want ≤%d", got, shrinkMinCap)
	}
	if got := rr.links.retainedEntries(); got > shrinkMinCap {
		t.Errorf("entry pool retains %d entries, want ≤%d", got, shrinkMinCap)
	}
}
