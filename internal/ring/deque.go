package ring

import "ringlang/internal/bits"

// Delivery is one pending message as the receiver will observe it: the
// processor it is delivered to, the direction it arrives from (seen from the
// receiver) and the payload. Schedulers queue Deliveries; the shared event
// loop (runLoop) performs them.
type Delivery struct {
	To      int
	From    Direction
	Payload bits.String
}

// linkIndex maps a (receiver, arrival direction) pair to a dense id in
// [0, 2n): the directed link the delivery travels over. Schedulers index
// their per-link state with it, avoiding map-keyed queues on the hot path.
func linkIndex(to int, arrival Direction) int {
	return to<<1 | int(arrival-1)
}

// numLinks is the number of directed link ids on a ring of n processors.
// Unidirectional runs only ever touch the odd ids: their messages travel
// Forward, so they arrive from Backward, and linkIndex maps arrival ==
// Backward to to<<1 | 1.
func numLinks(n int) int { return 2 * n }

// deque is a growable ring-buffer FIFO of deliveries. Unlike the
// `queue = queue[1:]` slice idiom it never sheds capacity on pop, so a
// steady-state run cycles through one reused buffer instead of reallocating
// as the queue drains and refills.
type deque struct {
	buf  []Delivery // len(buf) is zero or a power of two
	head int
	n    int
}

func (d *deque) len() int { return d.n }

func (d *deque) push(x Delivery) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)&(len(d.buf)-1)] = x
	d.n++
}

func (d *deque) pop() Delivery {
	x := d.buf[d.head]
	d.buf[d.head] = Delivery{} // release the payload reference
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.n--
	return x
}

func (d *deque) clear() {
	for d.n > 0 {
		d.pop()
	}
	d.head = 0
}

func (d *deque) grow() {
	// Start tiny: schedulers keep one deque per directed link, and most links
	// hold at most a message or two at a time.
	size := 2 * len(d.buf)
	if size == 0 {
		size = 2
	}
	buf := make([]Delivery, size)
	for i := 0; i < d.n; i++ {
		buf[i] = d.buf[(d.head+i)&(len(d.buf)-1)]
	}
	d.buf = buf
	d.head = 0
}

// linkQueues is a dense array of per-link FIFO queues plus a pending count,
// reusable across runs via reset.
type linkQueues struct {
	qs      []deque
	pending int
}

func (l *linkQueues) reset(links int) {
	if links <= cap(l.qs) {
		l.qs = l.qs[:links]
		for i := range l.qs {
			l.qs[i].clear()
		}
	} else {
		l.qs = make([]deque, links)
	}
	l.pending = 0
}

// push appends d to the link's queue and reports whether the link was empty
// before (i.e. just became schedulable).
func (l *linkQueues) push(link int, d Delivery) (wasEmpty bool) {
	q := &l.qs[link]
	wasEmpty = q.len() == 0
	q.push(d)
	l.pending++
	return wasEmpty
}

func (l *linkQueues) pop(link int) Delivery {
	l.pending--
	return l.qs[link].pop()
}

func (l *linkQueues) lenOf(link int) int { return l.qs[link].len() }
