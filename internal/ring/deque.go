package ring

import "ringlang/internal/bits"

// Delivery is one pending message as the receiver will observe it: the
// processor it is delivered to, the direction it arrives from (seen from the
// receiver) and the payload. Schedulers queue Deliveries; the shared event
// loop (runLoop) performs them.
type Delivery struct {
	To      int
	From    Direction
	Payload bits.String
}

// linkIndex maps a (receiver, arrival direction) pair to a dense id in
// [0, 2n): the directed link the delivery travels over. Schedulers index
// their per-link state with it, avoiding map-keyed queues on the hot path.
// The mapping is invertible — to = link>>1, arrival = link&1 + 1 — which is
// what lets the queue structures below avoid storing endpoints per message.
func linkIndex(to int, arrival Direction) int {
	return to<<1 | int(arrival-1)
}

// numLinks is the number of directed link ids on a ring of n processors.
// Unidirectional runs only ever touch the odd ids: their messages travel
// Forward, so they arrive from Backward, and linkIndex maps arrival ==
// Backward to to<<1 | 1.
func numLinks(n int) int { return 2 * n }

// fifoQueue is a struct-of-arrays FIFO of deliveries: parallel ring buffers
// for the receiver, arrival direction, and payload location, plus one flat
// byte arena holding every in-flight payload contiguously in push order. A
// drain-and-refill run cycles through the same few cache lines instead of
// chasing one heap-allocated payload per message, and popping is two array
// reads plus an arena slice — no pointer graph at all.
//
// Pushing copies the payload bytes into the arena, so a queued message never
// aliases the sender's scratch writer; popping returns a zero-copy view into
// the arena that stays valid until the NEXT pop (the previous payload's bytes
// are only reclaimed then), which covers the event loop's
// pop → Receive → dispatch window exactly.
type fifoQueue struct {
	// Slot ring (len is zero or a power of two), parallel arrays. The
	// receiver and arrival direction are packed as one link id (linkIndex is
	// invertible); slotLink and slotBits are carved out of one shared backing
	// allocation, so a cold queue costs three allocations total.
	slotLink []int32 // linkIndex(to, from) of the delivery
	slotOff  []int64 // absolute arena offset of the payload's first byte
	slotBits []int32 // payload length in bits
	head     int
	n        int

	// Payload arena: a power-of-two byte ring addressed by absolute,
	// monotonically increasing offsets (masked on access). aHead trails the
	// oldest still-reserved payload; aTail is the next write position. Each
	// payload is stored contiguously — pushes pad past the wrap point rather
	// than splitting — so views are plain subslices.
	arena []byte
	aHead int64
	aTail int64

	// Peaks of the current run and the shrink-policy counters fed by them.
	peakSlots      int
	peakBytes      int64
	oversizedSlots int
	oversizedArena int
}

func (q *fifoQueue) len() int { return q.n }

// push enqueues one delivery, copying the payload into the arena. Growth is
// first-run amortized; a warmed queue pushes allocation-free.
//
//ring:hotpath guard=TestEngineLoopAllocRegressionGuard
func (q *fifoQueue) push(to int, from Direction, payload bits.String) {
	if q.n == len(q.slotLink) {
		q.growSlots()
	}
	raw := payload.Raw()
	need := int64(len(raw))
	for {
		capA := int64(len(q.arena))
		if capA == 0 {
			q.growArena(need)
			continue
		}
		pos := q.aTail
		pad := int64(0)
		if rem := capA - pos&(capA-1); rem < need {
			pad = rem // keep the payload contiguous: skip the wrap remainder
		}
		if pos+pad+need-q.aHead > capA {
			q.growArena(pos + pad + need - q.aHead)
			continue
		}
		q.aTail = pos + pad
		break
	}
	off := q.aTail
	copy(q.arena[off&int64(len(q.arena)-1):], raw)
	q.aTail = off + need
	i := (q.head + q.n) & (len(q.slotLink) - 1)
	q.slotLink[i] = int32(linkIndex(to, from))
	q.slotOff[i] = off
	q.slotBits[i] = int32(payload.Len())
	q.n++
	if q.n > q.peakSlots {
		q.peakSlots = q.n
	}
	if used := q.aTail - q.aHead; used > q.peakBytes {
		q.peakBytes = used
	}
}

// pop dequeues the oldest delivery as a zero-copy view into the arena.
//
//ring:hotpath guard=TestEngineLoopAllocRegressionGuard
func (q *fifoQueue) pop() Delivery {
	i := q.head
	q.head = (q.head + 1) & (len(q.slotLink) - 1)
	q.n--
	off := q.slotOff[i]
	// Everything before this payload — including the previously popped one,
	// whose view the caller has finished with by now — is reclaimed here.
	q.aHead = off
	nbits := int(q.slotBits[i])
	view := q.arena[off&int64(len(q.arena)-1):][:(nbits+7)/8]
	link := int(q.slotLink[i])
	return Delivery{
		To:      link >> 1,
		From:    Direction(link&1 + 1),
		Payload: bits.View(view, nbits),
	}
}

// reset empties the queue for a fresh run, applying the shrink policy: a
// backing array whose capacity dwarfs what recent runs actually used is
// released after shrinkAfterRuns consecutive oversized runs, so one huge run
// does not pin its high-water memory forever.
func (q *fifoQueue) reset() {
	if shouldShrink(len(q.slotLink), q.peakSlots, &q.oversizedSlots) {
		q.slotLink, q.slotOff, q.slotBits = nil, nil, nil
	}
	if shouldShrink(len(q.arena), int(q.peakBytes), &q.oversizedArena) {
		q.arena = nil
	}
	q.head, q.n = 0, 0
	q.aHead, q.aTail = 0, 0
	q.peakSlots, q.peakBytes = 0, 0
}

// retainedSlots and retainedArenaBytes expose current capacities to the
// shrink-policy tests.
func (q *fifoQueue) retainedSlots() int      { return len(q.slotLink) }
func (q *fifoQueue) retainedArenaBytes() int { return len(q.arena) }

func (q *fifoQueue) growSlots() {
	size := 2 * len(q.slotLink)
	if size == 0 {
		size = 4
	}
	ints := make([]int32, 2*size) // slotLink and slotBits share one allocation
	link := ints[:size:size]
	bitsN := ints[size:]
	off := make([]int64, size)
	mask := len(q.slotLink) - 1
	for i := 0; i < q.n; i++ {
		j := (q.head + i) & mask
		link[i], off[i], bitsN[i] = q.slotLink[j], q.slotOff[j], q.slotBits[j]
	}
	q.slotLink, q.slotOff, q.slotBits = link, off, bitsN
	q.head = 0
}

// growArena replaces the byte ring with one of at least `need` bytes and
// re-lays the queued payloads out contiguously from offset zero, rewriting
// their slot offsets. Outstanding pop views keep the old arena alive through
// their own slice references, so rebasing is safe.
func (q *fifoQueue) growArena(need int64) {
	size := int64(len(q.arena)) * 2
	if size < 64 {
		size = 64
	}
	for size < need {
		size *= 2
	}
	fresh := make([]byte, size)
	oldMask := int64(len(q.arena) - 1)
	pos := int64(0)
	slotMask := len(q.slotLink) - 1
	for i := 0; i < q.n; i++ {
		j := (q.head + i) & slotMask
		nbytes := int64(int(q.slotBits[j])+7) / 8
		copy(fresh[pos:], q.arena[q.slotOff[j]&oldMask:][:nbytes])
		q.slotOff[j] = pos
		pos += nbytes
	}
	q.arena = fresh
	q.aHead, q.aTail = 0, pos
}

// linkQueues is a dense set of per-link FIFO queues in struct-of-arrays
// form: flat head/tail arrays indexed by link id, chained through one shared
// entry pool that stores only the payload (the endpoints are recomputed from
// the link id on pop). Compared to one growable buffer per link this is a
// single allocation for all 2n queues, and resetting for a new run is two
// array fills instead of 2n buffer walks.
type linkQueues struct {
	head []int32 // per-link chain head into the pool, -1 when empty
	tail []int32 // per-link chain tail, -1 when empty

	// Entry pool (struct-of-arrays): payload plus intrusive next link. Free
	// entries are chained through next starting at freeHead.
	payload  []bits.String
	next     []int32
	freeHead int32

	pending int

	peakEntries      int
	oversizedLinks   int
	oversizedEntries int
}

// reset prepares the queues for a fresh run over `links` directed links,
// applying the shrink policy to both the flat link arrays and the entry pool.
func (l *linkQueues) reset(links int) {
	if shouldShrink(cap(l.head), links, &l.oversizedLinks) {
		l.head, l.tail = nil, nil
	}
	if shouldShrink(cap(l.payload), l.peakEntries, &l.oversizedEntries) {
		l.payload, l.next = nil, nil
	}
	// Release stale payload references so the pool's retained capacity never
	// pins last run's message buffers.
	for i := range l.payload {
		l.payload[i] = bits.Empty()
	}
	l.payload = l.payload[:0]
	l.next = l.next[:0]
	l.freeHead = -1
	if cap(l.head) >= links {
		l.head = l.head[:links]
		l.tail = l.tail[:links]
	} else {
		l.head = make([]int32, links)
		l.tail = make([]int32, links)
	}
	for i := range l.head {
		l.head[i] = -1
		l.tail[i] = -1
	}
	l.pending = 0
	l.peakEntries = 0
}

// alloc takes an entry from the freelist (or grows the pool) and stores the
// payload in it.
//
//ring:hotpath guard=TestLoopAllocatesLessThanSeedLoop
func (l *linkQueues) alloc(p bits.String) int32 {
	if e := l.freeHead; e >= 0 {
		l.freeHead = l.next[e]
		l.payload[e] = p
		l.next[e] = -1
		return e
	}
	//ringvet:ignore hotpathalloc -- pool growth is first-run amortized; steady state serves from the freelist above
	l.payload = append(l.payload, p)
	//ringvet:ignore hotpathalloc -- grows in lockstep with payload; same first-run amortization
	l.next = append(l.next, -1)
	return int32(len(l.payload) - 1)
}

// push appends d's payload to the link's queue and reports whether the link
// was empty before (i.e. just became schedulable). The caller must pass the
// link id matching d (link == linkIndex(d.To, d.From)); the endpoints are not
// stored.
//
//ring:hotpath guard=TestLoopAllocatesLessThanSeedLoop
func (l *linkQueues) push(link int, d Delivery) (wasEmpty bool) {
	e := l.alloc(d.Payload)
	if t := l.tail[link]; t >= 0 {
		l.next[t] = e
	} else {
		l.head[link] = e
		wasEmpty = true
	}
	l.tail[link] = e
	l.pending++
	if l.pending > l.peakEntries {
		l.peakEntries = l.pending
	}
	return wasEmpty
}

// pop dequeues the head of the link's queue, recycling its entry.
//
//ring:hotpath guard=TestLoopAllocatesLessThanSeedLoop
func (l *linkQueues) pop(link int) Delivery {
	e := l.head[link]
	l.head[link] = l.next[e]
	if l.next[e] < 0 {
		l.tail[link] = -1
	}
	p := l.payload[e]
	l.payload[e] = bits.Empty() // release the payload reference
	l.next[e] = l.freeHead
	l.freeHead = e
	l.pending--
	return Delivery{To: link >> 1, From: Direction(link&1 + 1), Payload: p}
}

// empty reports whether the link's queue holds no message.
func (l *linkQueues) empty(link int) bool { return l.head[link] < 0 }

// peek returns the head payload of the link without dequeuing it. The link
// must be non-empty.
func (l *linkQueues) peek(link int) bits.String { return l.payload[l.head[link]] }

// retainedLinks and retainedEntries expose current capacities to the
// shrink-policy tests.
func (l *linkQueues) retainedLinks() int   { return cap(l.head) }
func (l *linkQueues) retainedEntries() int { return cap(l.payload) }
