package ring

import (
	"errors"
	"testing"
)

// The schedule catalog, pinned. Every consumer that keys behaviour off a
// schedule name — the serving tier's cache (ScheduleUsesSeed), the prefix
// cache (ScheduleIsPrefixStable), the fault-tolerance gate
// (ScheduleDeliveryGuarantee), alias folding (CanonicalScheduleName) — reads
// one of the classifiers below. This table states the whole contract in one
// place so adding a schedule (or an alias) without classifying it everywhere
// fails loudly here instead of silently miskeying a cache.
func TestScheduleCatalogClassification(t *testing.T) {
	cases := []struct {
		name         string
		canonical    string
		usesSeed     bool
		prefixStable bool
		guarantee    DeliveryGuarantee
	}{
		// Canonical names, in ScheduleNames order.
		{"sequential", "sequential", false, true, ExactlyOnce},
		{"random", "random", true, false, ExactlyOnce},
		{"round-robin", "round-robin", false, true, ExactlyOnce},
		{"adversarial", "adversarial", false, false, ExactlyOnce},
		{"concurrent", "concurrent", false, false, ExactlyOnce},
		{"sharded", "sharded", false, false, ExactlyOnce},
		{"lossy", "lossy", true, false, ExactlyOnce},
		{"duplicating", "duplicating", true, false, AtLeastOnce},
		{"crash-restart", "crash-restart", true, false, ExactlyOnce},
		{"crash-repair", "crash-repair", true, false, CrashProne},
		// Aliases: every classifier must agree with its canonical target.
		{"fifo", "sequential", false, true, ExactlyOnce},
		{"random-order", "random", true, false, ExactlyOnce},
		{"bounded-delay", "adversarial", false, false, ExactlyOnce},
		{"drop", "lossy", true, false, ExactlyOnce},
		{"at-least-once", "duplicating", true, false, AtLeastOnce},
		{"crash", "crash-repair", true, false, CrashProne},
		{"self-stabilizing", "crash-restart", true, false, ExactlyOnce},
	}

	covered := make(map[string]bool)
	for _, tc := range cases {
		covered[tc.name] = true
		if got := CanonicalScheduleName(tc.name); got != tc.canonical {
			t.Errorf("CanonicalScheduleName(%q) = %q, want %q", tc.name, got, tc.canonical)
		}
		if got := ScheduleUsesSeed(tc.name); got != tc.usesSeed {
			t.Errorf("ScheduleUsesSeed(%q) = %v, want %v", tc.name, got, tc.usesSeed)
		}
		if got := ScheduleIsPrefixStable(tc.name); got != tc.prefixStable {
			t.Errorf("ScheduleIsPrefixStable(%q) = %v, want %v", tc.name, got, tc.prefixStable)
		}
		if got := ScheduleDeliveryGuarantee(tc.name); got != tc.guarantee {
			t.Errorf("ScheduleDeliveryGuarantee(%q) = %v, want %v", tc.name, got, tc.guarantee)
		}
		if tc.name != tc.canonical && !covered[tc.canonical] {
			t.Errorf("alias %q listed before its canonical name %q", tc.name, tc.canonical)
		}
	}

	// The table covers the catalog exactly: every ScheduleNames entry appears,
	// every canonical column value is itself a catalog entry, and a name added
	// to the catalog without a row here fails.
	catalog := make(map[string]bool)
	for _, name := range ScheduleNames() {
		catalog[name] = true
		if !covered[name] {
			t.Errorf("ScheduleNames entry %q has no classification row", name)
		}
		if CanonicalScheduleName(name) != name {
			t.Errorf("ScheduleNames entry %q is not canonical", name)
		}
	}
	for _, tc := range cases {
		if !catalog[tc.canonical] {
			t.Errorf("row %q folds to %q, which is not in ScheduleNames", tc.name, tc.canonical)
		}
	}
	for _, name := range PrefixStableScheduleNames() {
		if !ScheduleIsPrefixStable(name) {
			t.Errorf("PrefixStableScheduleNames lists %q but ScheduleIsPrefixStable rejects it", name)
		}
	}
}

// Every catalog name and alias must resolve to an engine, and the engine's
// delivery guarantee must match the name classifier — the facade trusts the
// name, core.Run trusts the engine, and they must never disagree.
func TestScheduleCatalogResolution(t *testing.T) {
	names := ScheduleNames()
	names = append(names, "fifo", "random-order", "bounded-delay",
		"drop", "at-least-once", "crash", "self-stabilizing")
	for _, name := range names {
		engine, err := NewEngineByName(name, 7)
		if err != nil {
			t.Errorf("NewEngineByName(%q): %v", name, err)
			continue
		}
		if got, want := EngineDeliveryGuarantee(engine), ScheduleDeliveryGuarantee(name); got != want {
			t.Errorf("%q: engine %s guarantees %v, name classifies as %v", name, engine.Name(), got, want)
		}
		switch CanonicalScheduleName(name) {
		case "concurrent", "sharded":
			// Dedicated engine types, not scheduler-backed.
			if _, err := NewSchedulerByName(name, 7); err == nil {
				t.Errorf("NewSchedulerByName(%q) resolved; %q has no scheduler", name, name)
			}
		default:
			if _, err := NewSchedulerByName(name, 7); err != nil {
				t.Errorf("NewSchedulerByName(%q): %v", name, err)
			}
		}
	}
	if _, err := NewEngineByName("bogus", 0); !errors.Is(err, ErrUnknownSchedule) {
		t.Errorf("NewEngineByName(bogus) = %v, want ErrUnknownSchedule", err)
	}
	if _, err := NewSchedulerByName("bogus", 0); !errors.Is(err, ErrUnknownSchedule) {
		t.Errorf("NewSchedulerByName(bogus) = %v, want ErrUnknownSchedule", err)
	}
}
