package ring

import (
	"testing"

	"ringlang/internal/bits"
)

// decideThenSendNode is a leader that accepts inside Start and still returns
// sends. runLoop's record-then-deliver semantics dispatch the whole slice
// before terminating; the concurrent engine must account identically even
// though its stop channel is already closed while the slice is dispatched.
type decideThenSendNode struct {
	leader bool
}

func (d *decideThenSendNode) Start(ctx *Context) ([]Send, error) {
	if !d.leader {
		return nil, nil
	}
	if err := ctx.Accept(); err != nil {
		return nil, err
	}
	var w bits.Writer
	w.WriteBool(true)
	payload := w.String()
	return []Send{SendForward(payload), SendForward(payload)}, nil
}

func (d *decideThenSendNode) Receive(ctx *Context, from Direction, payload bits.String) ([]Send, error) {
	return nil, nil
}

// TestConcurrentDispatchAccountsFullSliceOnVerdict is the regression test for
// the dispatch accounting bug: the old dispatch checked the stop channel
// between the record of a send and its enqueue, so a run stopped by a verdict
// could count a send that was never put on its link and silently drop the
// rest of the slice — nondeterministically, because select picks among ready
// cases at random. Stats must match the shared event loop's on every run.
func TestConcurrentDispatchAccountsFullSliceOnVerdict(t *testing.T) {
	nodes := func() []Node {
		return []Node{
			&decideThenSendNode{leader: true},
			&decideThenSendNode{},
			&decideThenSendNode{},
		}
	}
	cfg := Config{RequireVerdict: true}
	want, err := NewSequentialEngine().Run(cfg, nodes())
	if err != nil {
		t.Fatal(err)
	}
	if want.Stats.Messages != 2 || want.Stats.Bits != 2 {
		t.Fatalf("sequential baseline = %d msgs / %d bits, want 2/2", want.Stats.Messages, want.Stats.Bits)
	}
	for i := 0; i < 100; i++ {
		res, err := NewConcurrentEngine().Run(cfg, nodes())
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != VerdictAccept {
			t.Fatalf("iteration %d: verdict %v", i, res.Verdict)
		}
		if res.Stats.Messages != want.Stats.Messages || res.Stats.Bits != want.Stats.Bits {
			t.Fatalf("iteration %d: concurrent engine recorded %d msgs / %d bits, sequential %d/%d — dispatch dropped part of a send slice",
				i, res.Stats.Messages, res.Stats.Bits, want.Stats.Messages, want.Stats.Bits)
		}
	}
}

// relayNode drives the mid-run variant of the same property: the leader's
// token fans out into a three-send burst at p1, p2 answers the first burst
// message back to the leader, and the leader's accept races with p1's
// dispatch of the remaining burst. Whatever the interleaving, the burst must
// be accounted atomically.
type relayNode struct {
	proc int
	seen bool
}

func (r *relayNode) Start(ctx *Context) ([]Send, error) {
	if r.proc != LeaderIndex {
		return nil, nil
	}
	var w bits.Writer
	w.WriteBool(true)
	return []Send{SendForward(w.String())}, nil
}

func (r *relayNode) Receive(ctx *Context, from Direction, payload bits.String) ([]Send, error) {
	switch r.proc {
	case LeaderIndex:
		return nil, ctx.Accept()
	case 1:
		// Burst: three one-bit messages toward p2.
		return []Send{SendForward(payload), SendForward(payload), SendForward(payload)}, nil
	default:
		// p2 answers only the first burst message, completing the ring back
		// to the leader; later burst messages are absorbed.
		if r.seen {
			return nil, nil
		}
		r.seen = true
		return []Send{SendForward(payload)}, nil
	}
}

// TestConcurrentBurstAccountingIsDeterministic runs the relay ring many
// times: the verdict lands while burst messages are still in flight, and
// with atomic slice accounting the totals are the same on every run and
// equal to the sequential engine's.
func TestConcurrentBurstAccountingIsDeterministic(t *testing.T) {
	nodes := func() []Node {
		return []Node{&relayNode{proc: 0}, &relayNode{proc: 1}, &relayNode{proc: 2}}
	}
	cfg := Config{RequireVerdict: true}
	want, err := NewSequentialEngine().Run(cfg, nodes())
	if err != nil {
		t.Fatal(err)
	}
	// Start token + burst of three + p2's single answer = 5 messages.
	if want.Stats.Messages != 5 {
		t.Fatalf("sequential baseline = %d msgs, want 5", want.Stats.Messages)
	}
	for i := 0; i < 200; i++ {
		res, err := NewConcurrentEngine().Run(cfg, nodes())
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Messages != want.Stats.Messages || res.Stats.Bits != want.Stats.Bits {
			t.Fatalf("iteration %d: concurrent engine recorded %d msgs / %d bits, sequential %d/%d",
				i, res.Stats.Messages, res.Stats.Bits, want.Stats.Messages, want.Stats.Bits)
		}
	}
}
