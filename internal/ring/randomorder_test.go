package ring

import (
	"errors"
	"testing"
)

func TestRandomOrderEngineTokenRing(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		eng := NewRandomOrderEngine(seed)
		res, err := eng.Run(Config{RequireVerdict: true}, tokenNodes(12))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Verdict != VerdictAccept || res.Stats.Messages != 12 || res.Stats.Bits != 12 {
			t.Errorf("seed %d: verdict=%v messages=%d bits=%d", seed, res.Verdict, res.Stats.Messages, res.Stats.Bits)
		}
	}
}

func TestRandomOrderEngineBidirectional(t *testing.T) {
	n := 7
	for seed := int64(1); seed < 6; seed++ {
		nodes := make([]Node, n)
		for i := range nodes {
			nodes[i] = &bounceNode{leader: i == LeaderIndex}
		}
		res, err := NewRandomOrderEngine(seed).Run(Config{Mode: Bidirectional, RequireVerdict: true}, nodes)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Verdict != VerdictAccept || res.Stats.Messages != 4 {
			t.Errorf("seed %d: verdict=%v messages=%d", seed, res.Verdict, res.Stats.Messages)
		}
	}
}

func TestRandomOrderEngineQuiescenceAndGuards(t *testing.T) {
	nodes := make([]Node, 5)
	for i := range nodes {
		nodes[i] = &floodOnceNode{}
	}
	res, err := NewRandomOrderEngine(3).Run(Config{Initiators: AllProcessors}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictNone || res.Stats.Messages != 5 {
		t.Errorf("verdict=%v messages=%d", res.Verdict, res.Stats.Messages)
	}

	loopNodes := make([]Node, 4)
	for i := range loopNodes {
		loopNodes[i] = &loopForeverNode{leader: i == LeaderIndex}
	}
	if _, err := NewRandomOrderEngine(3).Run(Config{MaxMessages: 50}, loopNodes); !errors.Is(err, ErrMessageBudgetExceeded) {
		t.Errorf("err = %v, want ErrMessageBudgetExceeded", err)
	}
	if _, err := NewRandomOrderEngine(3).Run(Config{}, nil); !errors.Is(err, ErrNoProcessors) {
		t.Errorf("err = %v, want ErrNoProcessors", err)
	}
	if eng := NewRandomOrderEngine(7); eng.Name() == "" {
		t.Error("Name should be non-empty")
	}
}

func TestRandomOrderMatchesSequentialAccounting(t *testing.T) {
	// For deterministic single-token algorithms the delivery order cannot
	// change anything; accounting must match the sequential engine exactly.
	for _, n := range []int{3, 9, 21} {
		nodes1 := make([]Node, n)
		nodes2 := make([]Node, n)
		for i := range nodes1 {
			nodes1[i] = &incrementNode{leader: i == LeaderIndex, want: uint64(n)}
			nodes2[i] = &incrementNode{leader: i == LeaderIndex, want: uint64(n)}
		}
		seq, err := NewSequentialEngine().Run(Config{RequireVerdict: true}, nodes1)
		if err != nil {
			t.Fatal(err)
		}
		random, err := NewRandomOrderEngine(int64(n)).Run(Config{RequireVerdict: true}, nodes2)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Stats.Bits != random.Stats.Bits || seq.Verdict != random.Verdict {
			t.Errorf("n=%d: accounting mismatch", n)
		}
	}
}
