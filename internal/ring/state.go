package ring

import "ringlang/internal/bits"

// RunState owns the per-run allocations of the shared event loop — the stats
// accounting, the processor contexts (each with its scratch payload writer,
// see Context.Writer) and (for engines that cache one) the scheduler with its
// per-link queues — so a caller that executes many runs can pay for them once
// instead of per run. A RunState may be used by one goroutine at a time;
// batch executors keep one per worker.
//
// The contexts' scratch writers are carved out of one flat writers array, so
// a ring of a million processors costs one allocation for all of them rather
// than a million pointer-chased Writer values.
//
// A Result produced with a RunState aliases the state's Stats: it is valid
// only until the state's next run. Snapshot with Stats.Clone to retain it.
//
// Backing arrays grow to the largest ring the state has run and are normally
// retained; a shrink policy (see shouldShrink) releases capacity that recent
// runs left mostly unused, so one n=10^6 run does not pin its high-water
// memory across a long sequence of small runs. Reserve pre-sizes the state
// for a known upcoming ring size.
type RunState struct {
	loop     loopState
	contexts []Context
	writers  []bits.Writer

	// sched caches the scheduler built by the engine that last ran with this
	// state, keyed by that engine, so repeated runs under one engine reuse
	// the scheduler's queue backing arrays.
	sched      Scheduler
	schedOwner Engine

	// shard caches the sharded engine's per-worker run structures the same
	// way sched caches a scheduler.
	shard      *shardRun
	shardOwner Engine

	oversizedContexts int
}

// NewRunState returns an empty reusable run state.
func NewRunState() *RunState {
	return &RunState{}
}

// NewRunStateSized returns a run state pre-sized for rings of up to n
// processors, equivalent to NewRunState followed by Reserve(n).
func NewRunStateSized(n int) *RunState {
	st := &RunState{}
	st.Reserve(n)
	return st
}

// Reserve pre-sizes the state for a ring of n processors: the processor
// contexts, their flat scratch-writer array and the per-link stats counters
// are allocated up front, so the run itself performs no growth reallocation
// on those structures. Reserving also resets the shrink policy's counters —
// an explicit reservation is a statement that the capacity is wanted.
// Reserve is a no-op when the state already holds enough capacity.
func (st *RunState) Reserve(n int) {
	if n < 1 {
		return
	}
	if cap(st.contexts) < n {
		st.contexts = make([]Context, n)
	}
	if cap(st.writers) < n {
		st.writers = make([]bits.Writer, n)
	}
	s := &st.loop.stats
	links := numLinks(n)
	if cap(s.linkMsgs) < links {
		s.linkMsgs = make([]int32, links)
		s.linkBits = make([]int64, links)
	}
	st.oversizedContexts = 0
	s.oversizedRuns = 0
}

// resetContexts sizes the context slice for a ring of n processors and wires
// every context's scratch writer to the flat writers array. Writer buffers
// grown in previous runs stay attached, so steady-state reuse never
// re-allocates payload scratch.
func (st *RunState) resetContexts(n int) []Context {
	if shouldShrink(cap(st.contexts), n, &st.oversizedContexts) {
		st.contexts = nil
		st.writers = nil
	}
	if cap(st.contexts) < n {
		st.contexts = make([]Context, n)
	}
	if cap(st.writers) < n {
		st.writers = make([]bits.Writer, n)
	}
	contexts := st.contexts[:n]
	writers := st.writers[:n]
	for i := range contexts {
		contexts[i].scratch = &writers[i]
	}
	return contexts
}

// scheduler returns the cached scheduler if owner built it, otherwise builds
// and caches a fresh one with factory.
func (st *RunState) scheduler(owner Engine, factory func() Scheduler) Scheduler {
	if st.schedOwner != owner || st.sched == nil {
		st.sched = factory()
		st.schedOwner = owner
	}
	return st.sched
}

// Shrink policy: a backing array is released when its capacity is at least
// shrinkFactor times what the run actually needs, for shrinkAfterRuns
// consecutive runs, and is big enough to matter (shrinkMinCap elements or
// bytes). The consecutive-runs requirement keeps a workload that alternates
// ring sizes from thrashing between allocation and release.
const (
	shrinkFactor    = 8
	shrinkAfterRuns = 16
	shrinkMinCap    = 1024
)

// shouldShrink implements the retention decision for one backing array:
// capacity is what is currently retained, need what the imminent run
// requires, and runs the caller-owned counter of consecutive oversized runs.
// It reports true when the array should be released (and resets the
// counter).
func shouldShrink(capacity, need int, runs *int) bool {
	if capacity >= shrinkMinCap && capacity >= need*shrinkFactor {
		*runs++
		if *runs >= shrinkAfterRuns {
			*runs = 0
			return true
		}
		return false
	}
	*runs = 0
	return false
}

// StatefulEngine is implemented by engines that can execute a run inside
// caller-owned reusable state. All scheduler-backed engines implement it (as
// does the sharded engine); the concurrent engine does not (its state is
// inherently per-run goroutine plumbing).
type StatefulEngine interface {
	Engine
	// RunWith behaves exactly like Run but reuses st's allocations. The
	// returned Result aliases st (see RunState) and must be consumed or
	// cloned before st's next run.
	RunWith(st *RunState, cfg Config, nodes []Node) (*Result, error)
}
