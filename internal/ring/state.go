package ring

// RunState owns the per-run allocations of the shared event loop — the stats
// accounting, the processor contexts (each with its scratch payload writer,
// see Context.Writer) and (for engines that cache one) the scheduler with its
// per-link queues — so a caller that executes many runs can pay for them once
// instead of per run. A RunState may be used by one goroutine at a time;
// batch executors keep one per worker.
//
// A Result produced with a RunState aliases the state's Stats: it is valid
// only until the state's next run. Snapshot with Stats.Clone to retain it.
type RunState struct {
	loop     loopState
	contexts []Context

	// sched caches the scheduler built by the engine that last ran with this
	// state, keyed by that engine, so repeated runs under one engine reuse
	// the scheduler's deque backing arrays.
	sched      Scheduler
	schedOwner Engine
}

// NewRunState returns an empty reusable run state.
func NewRunState() *RunState {
	return &RunState{}
}

// scheduler returns the cached scheduler if owner built it, otherwise builds
// and caches a fresh one with factory.
func (st *RunState) scheduler(owner Engine, factory func() Scheduler) Scheduler {
	if st.schedOwner != owner || st.sched == nil {
		st.sched = factory()
		st.schedOwner = owner
	}
	return st.sched
}

// StatefulEngine is implemented by engines that can execute a run inside
// caller-owned reusable state. All scheduler-backed engines implement it; the
// concurrent engine does not (its state is inherently per-run goroutine
// plumbing).
type StatefulEngine interface {
	Engine
	// RunWith behaves exactly like Run but reuses st's allocations. The
	// returned Result aliases st (see RunState) and must be consumed or
	// cloned before st's next run.
	RunWith(st *RunState, cfg Config, nodes []Node) (*Result, error)
}
