package ringlang_test

// End-to-end integration tests across subsystems: election feeding
// recognition, the TM transformation feeding the ring engines, and the trace
// analyses applied to full runs. These mirror the runnable examples but
// assert their outcomes.

import (
	"math/rand"
	"testing"

	"ringlang/internal/core"
	"ringlang/internal/election"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
	"ringlang/internal/tm"
	"ringlang/internal/trace"
)

// rotateToLeader re-reads the ring pattern starting at the elected leader,
// which is how the paper's model defines the recognized word.
func rotateToLeader(word lang.Word, leader int) lang.Word {
	out := make(lang.Word, 0, len(word))
	out = append(out, word[leader:]...)
	out = append(out, word[:leader]...)
	return out
}

func TestIntegrationElectionThenRecognition(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	const n = 36
	protocols := []election.Protocol{election.ChangRoberts, election.DolevKlaweRodeh, election.HirschbergSinclair}
	for _, protocol := range protocols {
		ids := election.RandomIDs(n, rng)
		outcome, err := election.Run(protocol, ids, nil)
		if err != nil {
			t.Fatalf("%s: %v", protocol, err)
		}
		// The elected processor becomes the leader; the pattern is read from it.
		base, _ := lang.NewLg(lang.GrowthN15).GenerateMember(n, rng)
		word := rotateToLeader(base, outcome.WinnerIndex)
		rec := core.NewLgRecognizer(lang.NewLg(lang.GrowthN15))
		res, err := core.Run(rec, word, core.RunOptions{})
		if err != nil {
			t.Fatalf("%s: recognition: %v", protocol, err)
		}
		want := ring.VerdictReject
		if rec.Language().Contains(word) {
			want = ring.VerdictAccept
		}
		if res.Verdict != want {
			t.Errorf("%s: verdict %v, membership says %v", protocol, res.Verdict, want)
		}
	}
}

func TestIntegrationTMPipelineAcrossEngines(t *testing.T) {
	rec, err := tm.NewRingRecognizer(tm.NewZeroesOnesMachine(), lang.NewAnBn())
	if err != nil {
		t.Fatal(err)
	}
	engines := []ring.Engine{
		ring.NewSequentialEngine(),
		ring.NewConcurrentEngine(),
		ring.NewRandomOrderEngine(13),
	}
	words := []string{"0011", "000111", "0101", "0001110"}
	for _, engine := range engines {
		for _, s := range words {
			word := lang.WordFromString(s)
			res, err := core.Run(rec, word, core.RunOptions{Engine: engine})
			if err != nil {
				t.Fatalf("%s on %q: %v", engine.Name(), s, err)
			}
			want := ring.VerdictReject
			if lang.NewAnBn().Contains(word) {
				want = ring.VerdictAccept
			}
			if res.Verdict != want {
				t.Errorf("%s on %q: verdict %v, want %v", engine.Name(), s, res.Verdict, want)
			}
		}
	}
}

func TestIntegrationTraceReportOnFullRun(t *testing.T) {
	rec := core.NewThreeCounters()
	word := lang.WordFromString("000000111111222222")
	res, err := core.Run(rec, word, core.RunOptions{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]string, len(word))
	for i, letter := range word {
		inputs[i] = string(letter)
	}
	report, err := trace.BuildReport(res, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != ring.VerdictAccept {
		t.Errorf("verdict = %v", report.Verdict)
	}
	if !report.Token.IsToken {
		t.Error("the single-pass recognizer must satisfy the token property")
	}
	if report.Passes != 1 {
		t.Errorf("passes = %d, want 1", report.Passes)
	}
	if report.InfoStates.MaxMultiplicity > 3 {
		// Theorem 4's structure: with distinct counters almost every
		// processor ends in its own information state (identical letters can
		// coincide only within a letter block boundary).
		t.Errorf("unexpectedly high information-state multiplicity %d", report.InfoStates.MaxMultiplicity)
	}
	if len(report.Links) != len(word) {
		t.Errorf("expected %d links, got %d", len(word), len(report.Links))
	}
}

func TestIntegrationLineSimulationPreservesLanguage(t *testing.T) {
	inner := core.NewCountBackward(lang.NewPerfectSquareLength())
	sim, err := core.NewLineSimulation(inner)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(202))
	for _, n := range []int{4, 9, 16, 24, 25, 49, 50} {
		word := lang.RandomWord(inner.Language().Alphabet(), n, rng)
		for _, engine := range []ring.Engine{ring.NewSequentialEngine(), ring.NewConcurrentEngine()} {
			direct, err := core.Run(inner, word, core.RunOptions{Engine: engine})
			if err != nil {
				t.Fatal(err)
			}
			simulated, err := core.Run(sim, word, core.RunOptions{Engine: engine})
			if err != nil {
				t.Fatal(err)
			}
			if direct.Verdict != simulated.Verdict {
				t.Errorf("n=%d on %s: simulation changed the verdict", n, engine.Name())
			}
		}
	}
}
