package ringlang

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync"

	"ringlang/internal/core"
	"ringlang/internal/exec"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// Typed sentinel errors of the facade. Every lookup and execution error
// returned by the package wraps one of these (plus, for ErrCanceled, the
// context's own error), so serving layers classify failures with errors.Is
// instead of string matching:
//
//	ErrUnknownAlgorithm     — the algorithm name is not in AlgorithmNames
//	ErrUnknownLanguage      — the language name/argument resolves to nothing
//	ErrUnknownSchedule      — the schedule name is not in ScheduleNames
//	ErrCanceled             — the context was canceled before or during a run
//	ErrClosed               — the Client was Closed before the call
//	ErrDeliveryNotTolerated — the schedule's delivery guarantee is weaker
//	                          than the algorithm tolerates (see WithAllowFaults)
var (
	ErrUnknownAlgorithm     = core.ErrUnknownAlgorithm
	ErrUnknownLanguage      = lang.ErrUnknownLanguage
	ErrUnknownSchedule      = ring.ErrUnknownSchedule
	ErrCanceled             = ring.ErrCanceled
	ErrClosed               = errors.New("ringlang: client is closed")
	ErrDeliveryNotTolerated = core.ErrDeliveryNotTolerated
)

// Client is a long-lived handle on one recognition algorithm under one
// delivery schedule. Its configuration is immutable after construction and
// every method is safe for concurrent use; a serving layer builds one per
// (algorithm, schedule) pair and calls it from every request goroutine. All
// methods take a context.Context and honor its cancellation promptly —
// mid-run for single executions, mid-dispatch for batches and streams — at
// amortized cost, so the engine hot path keeps its allocation floor.
//
// Batch and Stream share one lazily started worker pool whose workers reuse
// their run state — engine, scheduler queues, stats, scratch payload
// writers — from word to word and from call to call. Close releases those
// workers and retires the client: later calls report ErrClosed. Close is
// idempotent and safe to race with in-flight Batch/Stream calls (it waits
// for them to drain before releasing the pool).
type Client struct {
	rec         core.Recognizer
	engine      ring.Engine
	schedule    string
	seed        int64
	workers     int
	trace       bool
	presize     int
	prefix      *core.PrefixCache
	allowFaults bool

	mu       sync.Mutex
	pool     *exec.Pool
	closed   bool
	inflight sync.WaitGroup
}

// Option configures a Client at construction time.
type Option func(*Client)

// WithSchedule selects the delivery schedule by name — one of
// ScheduleNames(): "sequential", "random", "round-robin", "adversarial",
// "concurrent", "sharded", plus the fault axis "lossy", "duplicating",
// "crash-restart", "crash-repair". The default is sequential. The paper's
// bounds hold under every exactly-once schedule; sweeping this knob is how
// that is checked. Fault schedules whose delivery guarantee is weaker than
// exactly-once (see ring.ScheduleDeliveryGuarantee) refuse to run a raw
// recognizer with ErrDeliveryNotTolerated unless WithAllowFaults opts in.
func WithSchedule(name string) Option {
	return func(c *Client) { c.schedule = name }
}

// WithAllowFaults lets runs proceed when the schedule's delivery guarantee
// (at-least-once "duplicating", crash-prone "crash-repair") is weaker than
// the algorithm tolerates, instead of refusing with ErrDeliveryNotTolerated.
// The run then executes faithfully under the faulty network and its outcome —
// possibly a verdict the language oracle contradicts, or a typed run error —
// is the measurement. Report.Faults carries the injected-fault accounting.
func WithAllowFaults(allow bool) Option {
	return func(c *Client) { c.allowFaults = allow }
}

// WithSeed sets the seed driving randomized schedules (WithSchedule("random")).
func WithSeed(seed int64) Option {
	return func(c *Client) { c.seed = seed }
}

// WithWorkers sets how many worker goroutines Batch and Stream fan words
// across; values < 1 mean one worker per CPU (the default).
func WithWorkers(n int) Option {
	return func(c *Client) { c.workers = n }
}

// WithTrace records the full event trace of every run in Report.Trace, for
// the information-state and token analyses of internal/trace. Tracing is
// expensive on large rings; leave it off in serving paths.
func WithTrace(record bool) Option {
	return func(c *Client) { c.trace = record }
}

// WithPresize pre-reserves each run's backing state — scheduler queues,
// payload arena, per-processor contexts, per-link stats — for rings of up to
// n processors, so large-ring runs proceed without growth reallocations. The
// reservation applies to Recognize and to every pool worker Batch and Stream
// fan words across. Values smaller than the actual ring are harmless: the run
// grows past them as usual. Pair with WithSchedule("sharded") when sweeping
// rings of 10^6 processors.
func WithPresize(n int) Option {
	return func(c *Client) { c.presize = n }
}

// WithPrefixCache attaches a client-private prefix-checkpoint cache bounded
// to roughly maxBytes of retained checkpoint state. Runs then reuse shared-
// prefix computation: the engine checkpoints each word at a few fractional
// boundaries, and a later word sharing a prefix resumes from the deepest
// stored checkpoint instead of recomputing it — Recognize, Batch and Stream
// all read and feed the same cache, so pool workers warm it for each other.
// Reports are bit-for-bit identical to cold runs. The cache engages only
// where it is sound: prefix-extendable algorithms (forward token passes; the
// backward-reading ones run cold) under prefix-stable schedules
// ("sequential", "round-robin" — see ring.ScheduleIsPrefixStable); with
// WithTrace or other schedules it is simply bypassed. maxBytes < 1 leaves
// the client uncached.
func WithPrefixCache(maxBytes int64) Option {
	return func(c *Client) {
		c.prefix = nil
		if maxBytes > 0 {
			c.prefix = core.NewPrefixCache(maxBytes)
		}
	}
}

// WithSharedPrefixCache attaches an existing prefix-checkpoint cache (see
// NewPrefixCache), so many clients — e.g. a serving tier's per-algorithm
// client pool — share one bytes budget and reuse each other's checkpoints.
// Namespacing by (algorithm, language, schedule, ring size) is internal to
// the cache; sharing it across unrelated clients is always sound. A nil
// cache leaves the client uncached.
func WithSharedPrefixCache(cache *PrefixCache) Option {
	return func(c *Client) { c.prefix = cache }
}

// PrefixStats returns the counters of the client's prefix cache, and whether
// one is attached at all.
func (c *Client) PrefixStats() (PrefixStats, bool) {
	if c.prefix == nil {
		return PrefixStats{}, false
	}
	return c.prefix.Stats(), true
}

// WithEngine pins a concrete engine instead of resolving one from
// WithSchedule/WithSeed — the extension point for schedules the built-in
// names do not cover (see ring.NewScheduledEngine). The engine must be safe
// for concurrent use, as every built-in engine is. A pinned engine is
// authoritative: its Name() becomes the client's schedule label and any
// WithSchedule value is ignored.
func WithEngine(e Engine) Option {
	return func(c *Client) { c.engine = e }
}

// NewClient builds the named algorithm (see AlgorithmNames) and wraps it in a
// Client. The language argument is required only by algorithms that are
// parameterized by a language (for example "regular-one-pass" with
// "even-ones", or "lg" with "n^1.5"). Lookup failures are reported eagerly:
// the returned error wraps ErrUnknownAlgorithm, ErrUnknownLanguage or
// ErrUnknownSchedule.
func NewClient(algorithm, language string, opts ...Option) (*Client, error) {
	rec, err := core.NewRecognizerByName(algorithm, language)
	if err != nil {
		return nil, err
	}
	return NewClientWith(rec, opts...)
}

// NewClientWith wraps an already constructed recognizer — one of the core
// constructors, a tm.NewRingRecognizer transformation, or any custom
// Recognizer — in a Client.
func NewClientWith(rec Recognizer, opts ...Option) (*Client, error) {
	c := &Client{rec: rec}
	for _, opt := range opts {
		opt(c)
	}
	if c.engine == nil {
		name := c.schedule
		if name == "" {
			name = "sequential"
		}
		engine, err := ring.NewEngineByName(name, c.seed)
		if err != nil {
			return nil, err
		}
		c.engine = engine
	} else {
		// The pinned engine is authoritative; adopting its name (rather than
		// keeping an unvalidated WithSchedule string) keeps Report.Schedule
		// and UsedConcurrentRun truthful.
		c.schedule = c.engine.Name()
	}
	if c.schedule == "" {
		c.schedule = c.engine.Name()
	}
	return c, nil
}

// acquirePool returns the client's shared batch pool (starting it on first
// use) and registers one in-flight call, or reports ErrClosed. Every
// successful acquire must be paired with one c.inflight.Done() — that pairing
// is what lets Close wait for racing Batch/Stream calls instead of closing
// the pool out from under them.
func (c *Client) acquirePool() (*exec.Pool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.pool == nil {
		c.pool = exec.NewPool(c.workers)
	}
	c.inflight.Add(1)
	return c.pool, nil
}

// Close retires the client: it marks it closed, waits for in-flight Batch and
// Stream calls to drain, and releases the worker pool behind them (a no-op if
// neither ran). Close is idempotent — the second and every later call return
// nil immediately — and safe to call concurrently with Batch, Stream and
// Recognize: racing calls either complete normally or report ErrClosed, never
// panic. After Close every method reports ErrClosed (Batch and Stream as
// per-word Results). Callers that build short-lived clients should Close them
// to not accumulate idle worker goroutines; the deprecated v1 wrappers do.
//
// A Close racing a Stream waits only for the pool's work to finish, not for
// the consumer to finish ranging: results already parked in the stream's
// buffer still reach a consumer that keeps iterating.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	pool := c.pool
	c.pool = nil
	c.mu.Unlock()
	c.inflight.Wait()
	if pool != nil {
		pool.Close()
	}
	return nil
}

// AlgorithmName returns the name of the algorithm the client runs.
func (c *Client) AlgorithmName() string { return c.rec.Name() }

// LanguageName returns the name of the language the client decides.
func (c *Client) LanguageName() string { return c.rec.Language().Name() }

// ScheduleName returns the delivery schedule the client runs under.
func (c *Client) ScheduleName() string { return c.schedule }

// Recognize executes one recognition on the ring labelled with word and
// returns its report. Canceling ctx aborts the run with an error wrapping
// ErrCanceled; a closed client reports ErrClosed.
func (c *Client) Recognize(ctx context.Context, word Word) (*Report, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	res, err := core.Run(c.rec, word, core.RunOptions{Engine: c.engine, Ctx: ctx, RecordTrace: c.trace, Presize: c.presize, Prefix: c.prefix, AllowFaults: c.allowFaults})
	if err != nil {
		return nil, fmt.Errorf("ringlang: %w", err)
	}
	report := c.newReport(word, res.Verdict, res.Stats)
	report.Faults = res.Faults
	report.Trace = res.Trace
	return report, nil
}

// Result is the per-word outcome of a Batch or Stream call: exactly one of
// Report and Err is set. A malformed or canceled word never discards the
// other words' reports.
type Result struct {
	Report *Report
	Err    error
}

// Batch runs the client's algorithm on every word, fanning the executions
// across the client's worker pool (whose workers reuse their run state —
// engine, scheduler queues, stats — from word to word and call to call). It
// returns one Result per word, in word order; per-word failures land in the
// matching Result and never fail the words around them. Canceling ctx stops
// dispatch: words already running finish or abort through the engine's
// cancellation checks, undispatched words report ErrCanceled, and completed
// reports are kept. On a closed client every word reports ErrClosed.
func (c *Client) Batch(ctx context.Context, words []Word) []Result {
	if len(words) == 0 {
		return nil
	}
	pool, err := c.acquirePool()
	if err != nil {
		return closedResults(len(words))
	}
	defer c.inflight.Done()
	results := pool.RunBatchContext(ctx, c.jobs(words))
	out := make([]Result, len(words))
	for i, r := range results {
		out[i] = c.result(words[i], r)
	}
	return out
}

// closedResults is the per-word shape of a Batch or Stream call that lost the
// race with Close: one ErrClosed Result per word.
func closedResults(n int) []Result {
	out := make([]Result, n)
	for i := range out {
		out[i] = Result{Err: ErrClosed}
	}
	return out
}

// Stream runs the client's algorithm on every word like Batch, but yields
// each (word index, Result) pair as its worker finishes — completion order,
// not word order — instead of buffering the whole batch. Every word is
// yielded exactly once. Breaking out of the iteration cancels the remaining
// work and returns after the in-flight words drain; canceling ctx mid-stream
// stops dispatch and yields ErrCanceled results for the undispatched words.
// On a closed client every word yields ErrClosed.
func (c *Client) Stream(ctx context.Context, words []Word) iter.Seq2[int, Result] {
	return func(yield func(int, Result) bool) {
		if len(words) == 0 {
			return
		}
		pool, err := c.acquirePool()
		if err != nil {
			for i, r := range closedResults(len(words)) {
				if !yield(i, r) {
					return
				}
			}
			return
		}
		if ctx == nil {
			ctx = context.Background()
		}
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		type item struct {
			idx int
			res Result
		}
		// The channel is buffered to the batch size so worker sends never
		// block: when the consumer stops early, the remaining results park in
		// the buffer and the pool still drains promptly.
		ch := make(chan item, len(words))
		go func() {
			defer close(ch)
			defer c.inflight.Done()
			pool.RunEach(ctx, c.jobs(words), func(i int, r exec.Result) {
				ch <- item{idx: i, res: c.result(words[i], r)}
			})
		}()
		for it := range ch {
			if !yield(it.idx, it.res) {
				cancel()
				for range ch { // wait for the pool to wind down
				}
				return
			}
		}
	}
}

// jobs builds the exec jobs of one Batch or Stream call.
func (c *Client) jobs(words []Word) []exec.Job {
	jobs := make([]exec.Job, len(words))
	for i, w := range words {
		jobs[i] = exec.Job{Rec: c.rec, Word: w, Engine: c.engine, RecordTrace: c.trace, Presize: c.presize, Prefix: c.prefix, AllowFaults: c.allowFaults}
	}
	return jobs
}

// result converts one exec result into the facade shape.
func (c *Client) result(word Word, r exec.Result) Result {
	if r.Err != nil {
		return Result{Err: fmt.Errorf("ringlang: %w", r.Err)}
	}
	report := c.newReport(word, r.Verdict, r.Stats)
	report.Faults = r.Faults
	report.Trace = r.Trace
	return Result{Report: report}
}

// newReport assembles a Report from one execution's verdict and accounting.
func (c *Client) newReport(word Word, verdict Verdict, stats *Stats) *Report {
	return &Report{
		Algorithm:         c.rec.Name(),
		LanguageName:      c.rec.Language().Name(),
		Verdict:           verdict,
		Member:            c.rec.Language().Contains(word),
		Messages:          stats.Messages,
		Bits:              stats.Bits,
		BitsPerProcessor:  stats.BitsPerProcessor(),
		MaxMessageBits:    stats.MaxMessageBits,
		ProcessorCount:    stats.Processors,
		Schedule:          c.schedule,
		UsedConcurrentRun: c.schedule == "concurrent",
		Stats:             stats,
	}
}
