package ringlang

import (
	"errors"
	"testing"
)

func TestRecognizeFacade(t *testing.T) {
	cases := []struct {
		algorithm string
		language  string
		word      string
		want      Verdict
	}{
		{"three-counters", "", "001122", VerdictAccept},
		{"three-counters", "", "010212", VerdictReject},
		{"compare-wcw", "", "abcab", VerdictAccept},
		{"regular-one-pass", "even-ones", "0110", VerdictAccept},
		{"regular-one-pass", "even-ones", "0111", VerdictReject},
	}
	for _, c := range cases {
		report, err := Recognize(c.algorithm, c.language, WordFromString(c.word), Options{})
		if err != nil {
			t.Fatalf("Recognize(%s, %q): %v", c.algorithm, c.word, err)
		}
		if report.Verdict != c.want {
			t.Errorf("Recognize(%s, %q) = %v, want %v", c.algorithm, c.word, report.Verdict, c.want)
		}
		if (report.Verdict == VerdictAccept) != report.Member {
			t.Errorf("verdict and language membership disagree for %q", c.word)
		}
		if report.Bits <= 0 || report.Messages <= 0 || report.ProcessorCount != len(c.word) {
			t.Errorf("report accounting looks wrong: %+v", report)
		}
	}
}

func TestRecognizeConcurrentOption(t *testing.T) {
	seq, err := Recognize("three-counters", "", WordFromString("000111222"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	conc, err := Recognize("three-counters", "", WordFromString("000111222"), Options{Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Bits != conc.Bits || seq.Verdict != conc.Verdict {
		t.Errorf("engines disagree: %+v vs %+v", seq, conc)
	}
	if !conc.UsedConcurrentRun || seq.UsedConcurrentRun {
		t.Error("UsedConcurrentRun flag wrong")
	}
}

func TestRecognizeScheduleOption(t *testing.T) {
	word := WordFromString("000111222")
	base, err := Recognize("three-counters", "", word, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Schedule != "sequential" {
		t.Errorf("default schedule = %q, want sequential", base.Schedule)
	}
	for _, schedule := range ScheduleNames() {
		report, err := Recognize("three-counters", "", word, Options{Schedule: schedule, Seed: 5})
		if ScheduleDeliveryGuarantee(schedule) != DeliveryExactlyOnce {
			// A raw algorithm under weaker-than-exactly-once delivery is
			// refused, typed — never run into a silently wrong verdict.
			if !errors.Is(err, ErrDeliveryNotTolerated) {
				t.Errorf("schedule %q: got %v, want ErrDeliveryNotTolerated", schedule, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("schedule %q: %v", schedule, err)
		}
		if report.Schedule != schedule {
			t.Errorf("report schedule = %q, want %q", report.Schedule, schedule)
		}
		if report.Bits != base.Bits || report.Verdict != base.Verdict {
			t.Errorf("schedule %q disagrees with sequential: %+v vs %+v", schedule, report, base)
		}
		if report.UsedConcurrentRun != (schedule == "concurrent") {
			t.Errorf("schedule %q: UsedConcurrentRun = %v", schedule, report.UsedConcurrentRun)
		}
	}
	if _, err := Recognize("three-counters", "", word, Options{Schedule: "bogus"}); err == nil {
		t.Error("expected error for unknown schedule")
	}
	if len(ScheduleNames()) < 5 {
		t.Error("ScheduleNames too short")
	}
}

func TestRecognizeErrors(t *testing.T) {
	if _, err := Recognize("bogus", "", WordFromString("ab"), Options{}); err == nil {
		t.Error("expected error for unknown algorithm")
	}
	if _, err := Recognize("three-counters", "", WordFromString(""), Options{}); err == nil {
		t.Error("expected error for empty ring")
	}
}

func TestNameCatalogs(t *testing.T) {
	if len(AlgorithmNames()) < 10 {
		t.Error("AlgorithmNames too short")
	}
	if len(LanguageNames()) < 10 {
		t.Error("LanguageNames too short")
	}
}
