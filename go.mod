module ringlang

go 1.24
